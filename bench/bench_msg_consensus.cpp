// E16 — §4 extension: the paper's consensus carried into a message-passing
// system.  Algorithm 1 runs unchanged over ABD majority-quorum registers;
// a late message is a timing failure on a channel register.  Claims under
// test, mirroring the shared-memory headline:
//   * safety (agreement & validity) holds under arbitrary message delays;
//   * decisions arrive once delays respect the bound, and scale with the
//     message delay (the c·Δ shape, Δ now a message-level bound);
//   * any minority of replica crashes is harmless (ABD quorums);
//   * a majority crash stalls liveness but can never corrupt safety —
//     the CAP-flavoured corollary the composition predicts.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "tfr/msg/abd.hpp"
#include "tfr/msg/consensus_msg.hpp"
#include "tfr/msg/election_msg.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;

namespace {

constexpr sim::Duration kStep = 50;  // per-channel-access cost bound

struct Run {
  bool all_decided = false;
  std::uint64_t violations = 0;
  sim::Time last_decision = -1;
};

Run run_once(int n, std::unique_ptr<sim::TimingModel> timing,
             std::uint64_t seed, sim::Time limit, int crash_servers) {
  sim::Simulation s(std::move(timing), {.seed = seed});
  msg::Network net(s.space(), 2 * n);
  msg::MsgConsensus consensus(net, n, 60 * kStep);
  consensus.monitor().throw_on_violation(false);
  for (int i = 0; i < n; ++i) {
    consensus.monitor().set_input(i, i % 2);
    s.spawn([&consensus, i](sim::Env env) {
      return consensus.participant(env, i, i % 2);
    });
  }
  for (int i = 0; i < n; ++i) {
    s.spawn(
        [&net, i, n](sim::Env env) { return msg::abd_server(env, net, i, n); });
  }
  for (int c = 0; c < crash_servers; ++c) s.crash_at(n + c, 1);

  const auto deciders = static_cast<std::size_t>(n);
  s.run(limit, [&] { return consensus.monitor().decided_count() == deciders; });
  Run r;
  r.all_decided = consensus.monitor().all_decided(deciders);
  r.violations = consensus.monitor().agreement_violations() +
                 consensus.monitor().validity_violations();
  r.last_decision = consensus.monitor().last_decision_time();
  return r;
}

}  // namespace

TFR_BENCH_EXPERIMENT(E16, "section 4 (message passing)", bench::Tier::kSmoke,
                     "Algorithm 1 over message passing (ABD registers): "
                     "safety always, liveness when message delays behave") {
  // (a) decision time vs message-step cost.
  Table scale("failure-free: decision time vs per-message step cost");
  scale.header({"n", "step cost", "decide time / step (mean, min..max)",
                "violations"});
  bool clean_all_decide = true;
  std::uint64_t clean_violations = 0;
  for (const int n : {3, 5}) {
    for (const sim::Duration cost : {10, 50}) {
      Samples times;
      for (std::uint64_t seed = 0; seed < 8; ++seed) {
        auto r = run_once(n, sim::make_uniform_timing(1, cost), seed,
                          1'000'000'000, 0);
        clean_all_decide &= r.all_decided;
        clean_violations += r.violations;
        if (r.last_decision >= 0)
          times.add(static_cast<double>(r.last_decision));
      }
      scale.row({Table::fmt(static_cast<long long>(n)),
                 Table::fmt(static_cast<long long>(cost)),
                 bench::summarize(times, static_cast<double>(cost)),
                 Table::fmt(static_cast<unsigned long long>(clean_violations))});
    }
  }
  scale.print(rec.out());
  rec.metric("clean.violations", static_cast<double>(clean_violations));
  rec.expect(clean_all_decide && clean_violations == 0,
             "failure-free message consensus always decides, safely");

  // (b) late messages (timing failures on channels).
  Table late("5% of channel accesses stretched 40x (late messages)");
  late.header({"n", "decided", "violations",
               "decide time / step (mean, min..max)"});
  bool late_all_decide = true;
  std::uint64_t late_violations = 0;
  for (const int n : {3, 5}) {
    Samples times;
    bool decided = true;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      auto injector = std::make_unique<sim::FailureInjector>(
          sim::make_uniform_timing(1, kStep), kStep);
      injector->set_random_failures(0.05, 40 * kStep);
      auto r = run_once(n, std::move(injector), seed, 4'000'000'000, 0);
      decided &= r.all_decided;
      late_violations += r.violations;
      if (r.last_decision >= 0)
        times.add(static_cast<double>(r.last_decision));
    }
    late_all_decide &= decided;
    late.row({Table::fmt(static_cast<long long>(n)), decided ? "yes" : "NO",
              Table::fmt(static_cast<unsigned long long>(late_violations)),
              bench::summarize(times, static_cast<double>(kStep))});
  }
  late.print(rec.out());
  rec.metric("late.violations", static_cast<double>(late_violations));
  rec.expect(late_violations == 0,
             "late messages never violate agreement/validity");
  rec.expect(late_all_decide,
             "decisions still arrive once the late-message storm is "
             "ridden out");

  // (c) replica crashes: minority harmless; majority stalls but stays safe.
  Table crash("replica crashes (n = 5)");
  crash.header({"servers crashed", "decided within limit", "violations"});
  std::uint64_t crash_violations = 0;
  bool minority_ok = true;
  bool majority_stalls = false;
  for (const int crashed : {1, 2, 3}) {
    const auto r = run_once(5, sim::make_uniform_timing(1, kStep), 7,
                            crashed <= 2 ? 1'000'000'000 : 3'000'000,
                            crashed);
    crash_violations += r.violations;
    if (crashed <= 2) minority_ok &= r.all_decided;
    if (crashed == 3) majority_stalls = !r.all_decided;
    crash.row({Table::fmt(static_cast<long long>(crashed)),
               r.all_decided ? "yes" : "no",
               Table::fmt(static_cast<unsigned long long>(r.violations))});
  }
  crash.print(rec.out());
  rec.expect(minority_ok && crash_violations == 0,
             "any minority of replica crashes is tolerated");
  rec.expect(majority_stalls,
             "a crashed majority stalls liveness (quorums unavailable) "
             "— while safety still holds");

  // (d) elections: the timing-dependent baseline vs the resilient one —
  // the message-passing twins of Fischer vs Algorithm 3.
  Table elections("leader election: split-leadership runs out of 40 seeds "
                  "(n = 4, 30% of channel accesses stretched 100x)");
  elections.header({"algorithm", "splits (no failures)",
                    "splits (late messages)"});
  auto timed_splits = [&](bool failures) {
    std::uint64_t splits = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      std::unique_ptr<sim::TimingModel> timing =
          sim::make_uniform_timing(1, kStep);
      if (failures) {
        auto injector = std::make_unique<sim::FailureInjector>(
            std::move(timing), kStep);
        injector->set_random_failures(0.3, 100 * kStep);
        timing = std::move(injector);
      }
      sim::Simulation s(std::move(timing), {.seed = seed});
      msg::Network net(s.space(), 4);
      msg::TimedElection election(net, 4, 20 * kStep);
      for (int i = 0; i < 4; ++i) {
        s.spawn([&election, i](sim::Env env) {
          return election.participant(env, i);
        });
      }
      s.run(100'000'000);
      splits += (election.monitor().agreement_violations() > 0);
    }
    return splits;
  };
  auto resilient_splits = [&](bool failures) {
    std::uint64_t splits = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      std::unique_ptr<sim::TimingModel> timing =
          sim::make_uniform_timing(1, kStep);
      if (failures) {
        auto injector = std::make_unique<sim::FailureInjector>(
            std::move(timing), kStep);
        injector->set_random_failures(0.3, 100 * kStep);
        timing = std::move(injector);
      }
      sim::Simulation s(std::move(timing), {.seed = seed});
      const int n = 4;
      msg::Network net(s.space(), 2 * n);
      msg::MsgElection election(net, n, 60 * kStep);
      for (int i = 0; i < n; ++i) {
        s.spawn([&election, i](sim::Env env) {
          return election.participant(env, i);
        });
      }
      for (int i = 0; i < n; ++i) {
        s.spawn([&net, i, n](sim::Env env) {
          return msg::abd_server(env, net, i, n);
        });
      }
      s.run(20'000'000'000, [&] {
        return election.monitor().decided_count() ==
               static_cast<std::size_t>(n);
      });
      splits += (election.monitor().agreement_violations() > 0);
    }
    return splits;
  };
  const auto timed_clean = timed_splits(false);
  const auto timed_faulty = timed_splits(true);
  const auto resilient_clean = resilient_splits(false);
  const auto resilient_faulty = resilient_splits(true);
  elections.row({"timed broadcast (baseline)",
                 Table::fmt(static_cast<unsigned long long>(timed_clean)),
                 Table::fmt(static_cast<unsigned long long>(timed_faulty))});
  elections.row({"resilient (bitwise consensus over ABD)",
                 Table::fmt(static_cast<unsigned long long>(resilient_clean)),
                 Table::fmt(static_cast<unsigned long long>(
                     resilient_faulty))});
  elections.print(rec.out());

  rec.metric("election.timed.splits_faulty",
             static_cast<double>(timed_faulty));
  rec.metric("election.resilient.splits_faulty",
             static_cast<double>(resilient_faulty));
  rec.expect(timed_clean == 0,
             "timed election is correct while messages are on time");
  rec.expect(timed_faulty > 0,
             "late messages split the timed election's leadership");
  rec.expect(resilient_clean == 0 && resilient_faulty == 0,
             "the resilient election never splits, failures or not");
}
