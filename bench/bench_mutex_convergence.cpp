// E8 — Theorems 3.2 / 3.3 (the paper's key ablation): Algorithm 3
// converges after timing failures cease iff the inner algorithm A is
// starvation-free.  With A = Lamport's fast mutex (deadlock-free only) a
// legal post-failure schedule can bypass a slow process forever; with A =
// starvation-free(Lamport fast) every post-failure wait is bounded.
//
// Workload: 4 processes; process 0 runs at the legal speed limit (every
// access costs exactly Delta) while the rest are fast; a failure burst
// first pushes several processes past Fischer's filter into A.  The run
// then continues failure-free to a growing horizon.  Series: the longest
// post-burst wait (completed or still pending at the horizon) for each
// instantiation.  Expected shape: starvation-free rows constant in the
// horizon; deadlock-free rows grow linearly with it (the slow process is
// starved for the entire run).

#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "tfr/mutex/mutex_sim.hpp"
#include "tfr/mutex/workload_sim.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;
using mutex::WorkloadConfig;

namespace {
constexpr sim::Duration kDelta = 100;

sim::Duration post_failure_wait(bool starvation_free, sim::Time horizon,
                                std::uint64_t seed) {
  auto base = std::make_unique<sim::PerProcessTiming>(
      std::vector<sim::Duration>{kDelta, 1, 1, 1}, 1);
  auto injector =
      std::make_unique<sim::FailureInjector>(std::move(base), kDelta);
  const sim::Time failure_end = 40 * kDelta;
  injector->add_window(
      {.begin = 0, .end = failure_end, .stretched = 5 * kDelta});

  sim::Simulation s(std::move(injector), {.seed = seed});
  auto algorithm =
      starvation_free
          ? mutex::make_tfr_mutex_starvation_free(s.space(), 4, kDelta)
          : mutex::make_tfr_mutex_deadlock_free_only(s.space(), 4, kDelta);
  sim::MutexMonitor monitor;
  const WorkloadConfig config{
      .processes = 4, .sessions = 0, .cs_time = 10, .ncs_time = 0};
  for (int i = 0; i < 4; ++i) {
    s.spawn([&, i](sim::Env env) {
      return mutex::mutex_sessions(env, *algorithm, monitor, i, config);
    });
  }
  s.run(horizon);
  return std::max(monitor.max_wait_starting_at(failure_end + 6 * kDelta),
                  monitor.longest_pending_wait(horizon));
}

}  // namespace

TFR_BENCH_EXPERIMENT(E8, "Theorems 3.2/3.3", bench::Tier::kSmoke,
                     "convergence after failures: A deadlock-free "
                     "(Theorem 3.2) vs A starvation-free (Theorem 3.3)") {
  Table table;
  table.header({"horizon / Delta", "post-burst wait / Delta, A=sf",
                "post-burst wait / Delta, A=df"});

  std::vector<double> sf_waits, df_waits, horizons;
  for (const sim::Time horizon_factor : {1000, 2000, 4000, 8000}) {
    const sim::Time horizon = horizon_factor * kDelta;
    double sf_worst = 0, df_worst = 0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      sf_worst = std::max(sf_worst, static_cast<double>(post_failure_wait(
                                        true, horizon, seed)));
      df_worst = std::max(df_worst, static_cast<double>(post_failure_wait(
                                        false, horizon, seed)));
    }
    horizons.push_back(static_cast<double>(horizon_factor));
    sf_waits.push_back(sf_worst / kDelta);
    df_waits.push_back(df_worst / kDelta);
    table.row({Table::fmt(static_cast<long long>(horizon_factor)),
               Table::fmt(sf_worst / kDelta, 1),
               Table::fmt(df_worst / kDelta, 1)});
  }
  table.print(rec.out());

  const double sf_spread = *std::max_element(sf_waits.begin(), sf_waits.end()) -
                           *std::min_element(sf_waits.begin(), sf_waits.end());
  rec.metric("sf.wait.worst", sf_waits.back(), "delta");
  rec.metric("df.wait.at_largest_horizon", df_waits.back(), "delta");
  rec.expect(sf_spread == 0.0,
             "starvation-free wait is horizon-independent (converged)");
  rec.expect(df_waits.back() >= 0.9 * horizons.back(),
             "deadlock-free wait tracks the horizon (starvation: the "
             "slow process never re-enters)");
  rec.expect(df_waits.back() > 10 * sf_waits.back(),
             "deadlock-free inner algorithm is >10x worse at the "
             "largest horizon");
}
