// E20 — shard-scale service scenario: millions of open-loop client
// sessions against S shards of (leader election + ABD register), with
// bounded queues, explicit backpressure and batch replication (ROADMAP
// north star; docs/MODEL.md "Service scenario").  Claims under test:
//   * scale: 4 shards serve 1M sessions to completion with single-digit
//     thousands of quorum operations (batching amortises the ABD round
//     trips) and bounded tail latency in Δ units;
//   * overload is explicit, not silent: past saturation the bounded
//     queues reject, the retry storm stays within the amplification
//     bound max_attempts, every session is either served or counted
//     shed, and throughput holds at the service capacity;
//   * partial outages stay partial: cutting the leaders of a shard
//     subset leaves the others serving, safety holds throughout
//     (every shard history linearizes), and after the heal the backlog
//     drains and every stalled quorum op completes within the
//     convergence bound.

#include <cstdint>

#include "bench_util.hpp"
#include "tfr/service/service.hpp"

using namespace tfr;

namespace {

constexpr sim::Duration kStep = 50;  // per-channel-access cost bound (Δ)

/// The E19 hardened retry discipline: ABD ack windows and client backoff
/// in units of the step bound.
msg::RetryPolicy retry_policy() {
  msg::RetryPolicy policy;
  policy.timeout = 40 * kStep;
  policy.timeout_growth = 2.0;
  policy.max_timeout = 320 * kStep;
  policy.backoff = 2 * kStep;
  policy.backoff_growth = 2.0;
  policy.max_backoff = 40 * kStep;
  policy.jitter = kStep;
  policy.poll_every = 5;
  return policy;
}

service::ServiceConfig base_config() {
  service::ServiceConfig config;
  config.shards = 4;
  config.step = kStep;
  config.sim_seed = 1;
  config.shard.replicas = 3;
  config.shard.delta = kStep;
  config.shard.abd_retry = retry_policy();
  config.shard.batch.max_batch = 256;
  config.shard.batch.max_wait = 4 * kStep;
  config.shard.queue_capacity = 4096;
  config.shard.drain_hint = 8;
  config.shard.poll_every = kStep;
  config.load.tick = kStep;
  config.load.retry = retry_policy();
  config.load.max_attempts = 6;
  config.load.route_seed = 11;
  return config;
}

double steps(double ticks) { return ticks / static_cast<double>(kStep); }

}  // namespace

TFR_BENCH_EXPERIMENT(E20, "ROADMAP north star (service scale)",
                     bench::Tier::kSmoke,
                     "shard-scale service: 4 shards x 1M open-loop "
                     "sessions, explicit backpressure, partial outage "
                     "with bounded recovery") {
  // (a) steady state: 1M sessions at ~74% of the batched quorum capacity.
  service::ServiceConfig steady = base_config();
  steady.load.sessions = 1'000'000;
  steady.load.arrivals_per_tick = 0.40;
  const service::ServiceReport st = service::run_service(steady);

  Table scale("steady state: 4 shards x 3 replicas, 1M sessions at 0.40/tick");
  scale.header({"served", "shed", "batches", "quorum ops", "throughput /d",
                "p50 /d", "p99 /d", "p999 /d"});
  scale.row({Table::fmt(static_cast<unsigned long long>(st.served)),
             Table::fmt(static_cast<unsigned long long>(st.shed)),
             Table::fmt(static_cast<unsigned long long>(st.batches)),
             Table::fmt(static_cast<unsigned long long>(st.abd_operations)),
             Table::fmt(st.throughput_per_delta(kStep), 2),
             Table::fmt(steps(st.latency.percentile(50)), 2),
             Table::fmt(steps(st.latency.percentile(99)), 2),
             Table::fmt(steps(st.latency.percentile(99.9)), 2)});
  scale.print(rec.out());
  rec.metric("steady.served", static_cast<double>(st.served));
  rec.metric("steady.batches", static_cast<double>(st.batches));
  rec.metric("steady.abd_ops", static_cast<double>(st.abd_operations));
  rec.metric("steady.throughput_per_delta", st.throughput_per_delta(kStep));
  rec.metric("steady.latency_p99_steps", steps(st.latency.percentile(99)),
             "delta");
  rec.metric("steady.latency_p999_steps", steps(st.latency.percentile(99.9)),
             "delta");
  rec.metric("steady.amplification", st.amplification);
  rec.metric("steady.safety_violations",
             static_cast<double>(st.safety_violations +
                                 st.readback_mismatches));
  rec.expect(st.all_elected && st.complete() && st.shed == 0,
             "all 1M sessions served (none shed) after every shard elects");
  rec.expect(st.rejected == 0 && st.amplification == 1.0,
             "below saturation the bounded queues never push back");
  rec.expect(st.linearizable && st.safety_violations == 0 &&
                 st.readback_mismatches == 0,
             "every shard history linearizes at 1M-session scale");
  rec.expect(st.abd_operations < st.served / 50,
             "batching amortises replication >50x (quorum ops << sessions)");
  rec.expect(steps(st.latency.percentile(99.9)) < 500,
             "tail latency stays bounded (p999 under 500 delta)");

  // (b) saturation: offered load ~2x the batched capacity; the queues
  // must reject, the storm must stay within the amplification bound, and
  // throughput must hold at capacity instead of collapsing.
  service::ServiceConfig sat = base_config();
  sat.load.sessions = 240'000;
  sat.load.arrivals_per_tick = 1.0;
  sat.shard.queue_capacity = 1024;
  const service::ServiceReport sa = service::run_service(sat);

  Table storm("saturation: 240k sessions at 1.0/tick (~2x capacity)");
  storm.header({"served", "shed", "rejected", "amplification", "max depth",
                "throughput /d"});
  storm.row({Table::fmt(static_cast<unsigned long long>(sa.served)),
             Table::fmt(static_cast<unsigned long long>(sa.shed)),
             Table::fmt(static_cast<unsigned long long>(sa.rejected)),
             Table::fmt(sa.amplification, 3),
             Table::fmt(static_cast<unsigned long long>(sa.max_queue_depth)),
             Table::fmt(sa.throughput_per_delta(kStep), 2)});
  storm.print(rec.out());
  rec.metric("sat.served", static_cast<double>(sa.served));
  rec.metric("sat.shed", static_cast<double>(sa.shed));
  rec.metric("sat.rejected", static_cast<double>(sa.rejected));
  rec.metric("sat.amplification", sa.amplification);
  rec.metric("sat.throughput_per_delta", sa.throughput_per_delta(kStep));
  rec.metric("sat.safety_violations",
             static_cast<double>(sa.safety_violations +
                                 sa.readback_mismatches));
  rec.expect(sa.complete() && sa.rejected > 0 && sa.shed > 0,
             "overload is explicit: rejects and sheds, never lost sessions");
  rec.expect(sa.amplification > 1.0 &&
                 sa.amplification <=
                     static_cast<double>(sat.load.max_attempts),
             "the retry storm stays within the max_attempts bound");
  rec.expect(sa.max_queue_depth == sat.shard.queue_capacity,
             "the bounded queues actually fill (backpressure was real)");
  rec.expect(sa.throughput_per_delta(kStep) >
                 st.throughput_per_delta(kStep),
             "past saturation throughput holds at capacity (above the "
             "steady-state offered rate)");
  rec.expect(sa.linearizable && sa.safety_violations == 0 &&
                 sa.readback_mismatches == 0,
             "overload never costs safety");

  // (c) partial outage: cut the leaders of shards {1, 3} for 800 steps
  // mid-load; the other shards keep serving, and after the heal the
  // backlog drains and stalled quorum ops converge within the bound.
  service::ServiceConfig out = base_config();
  out.load.sessions = 120'000;
  out.load.arrivals_per_tick = 0.30;
  out.shard.queue_capacity = 1024;
  out.outage.shards = {1, 3};
  out.outage.begin = 200 * kStep;
  out.outage.heal = 1'000 * kStep;
  out.convergence_bound = 1'000 * kStep;
  const service::ServiceReport ou = service::run_service(out);

  Table heal("partial outage: shards {1,3} leaders cut for 800 steps");
  heal.header({"served", "shed", "rejected", "abd retries", "drain /d",
               "worst lag /d", "converged"});
  heal.row({Table::fmt(static_cast<unsigned long long>(ou.served)),
            Table::fmt(static_cast<unsigned long long>(ou.shed)),
            Table::fmt(static_cast<unsigned long long>(ou.rejected)),
            Table::fmt(static_cast<unsigned long long>(ou.abd_retries)),
            Table::fmt(steps(static_cast<double>(ou.heal_drain)), 2),
            Table::fmt(steps(static_cast<double>(ou.worst_lag)), 2),
            ou.converged ? "yes" : "NO"});
  heal.print(rec.out());
  rec.metric("outage.served", static_cast<double>(ou.served));
  rec.metric("outage.shed", static_cast<double>(ou.shed));
  rec.metric("outage.rejected", static_cast<double>(ou.rejected));
  rec.metric("outage.abd_retries", static_cast<double>(ou.abd_retries));
  rec.metric("outage.heal_drain_steps",
             steps(static_cast<double>(ou.heal_drain)), "delta");
  rec.metric("outage.worst_lag_steps",
             steps(static_cast<double>(ou.worst_lag)), "delta");
  rec.metric("outage.safety_violations",
             static_cast<double>(ou.safety_violations +
                                 ou.readback_mismatches));
  rec.expect(ou.complete() && ou.rejected > 0 && ou.abd_retries > 0,
             "the cut was real: backpressure and quorum retries on the "
             "affected shards");
  rec.expect(ou.served > ou.sessions / 2,
             "the outage stays partial: unaffected shards keep serving");
  // The drain works off the queue backlog plus the deferred retry storm
  // (waves of bounced sessions re-arriving on their retry-after hints), so
  // its bound is looser than the per-op convergence bound: well under the
  // ~7000 steps the backlog survives when the frontend never recovers.
  rec.expect(ou.heal_drain >= 0 && ou.heal_drain <= 2'000 * kStep,
             "after the heal the backlog drains within 2000 delta");
  rec.expect(ou.converged && ou.unfinished == 0,
             "every stalled quorum op completes within the convergence "
             "bound of the heal");
  rec.expect(ou.linearizable && ou.safety_violations == 0 &&
                 ou.readback_mismatches == 0,
             "safety holds through the outage on every shard");
}
