// Shared scaffolding for the experiment harnesses (E1-E11).
//
// Each bench binary reproduces one claim of the paper's evaluation
// (DESIGN.md §3 maps claims to binaries) and prints:
//   * an aligned table with the measured series, and
//   * one or more EXPECT lines — machine-greppable shape checks in the
//     form "EXPECT <description>: PASS|FAIL" that encode what the paper
//     predicts (who wins, by what factor, where the bound lies).
// EXPERIMENTS.md records paper-vs-measured for every table printed here.

#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "tfr/common/stats.hpp"
#include "tfr/common/table.hpp"

namespace tfr::bench {

inline int g_failures = 0;

/// Prints a shape check; tracks failures for the process exit code.
inline void expect(bool ok, const std::string& what) {
  std::cout << "EXPECT " << what << ": " << (ok ? "PASS" : "FAIL") << "\n";
  if (!ok) ++g_failures;
}

/// Exit code for main(): 0 iff every expect() passed.
inline int finish() {
  if (g_failures > 0)
    std::cout << "\n" << g_failures << " expectation(s) FAILED\n";
  return g_failures == 0 ? 0 : 1;
}

/// Formats a Samples summary as "mean (min..max)" in the given unit.
inline std::string summarize(const Samples& samples, double unit = 1.0,
                             int precision = 2) {
  if (samples.empty()) return "-";
  return Table::fmt(samples.mean() / unit, precision) + " (" +
         Table::fmt(samples.min() / unit, precision) + ".." +
         Table::fmt(samples.max() / unit, precision) + ")";
}

}  // namespace tfr::bench
