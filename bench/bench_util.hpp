// Shared scaffolding for the experiment harnesses (E1-E11).
//
// Each bench binary reproduces one claim of the paper's evaluation
// (DESIGN.md §3 maps claims to binaries) and prints:
//   * an aligned table with the measured series, and
//   * one or more EXPECT lines — machine-greppable shape checks in the
//     form "EXPECT <description>: PASS|FAIL" that encode what the paper
//     predicts (who wins, by what factor, where the bound lies).
// EXPERIMENTS.md records paper-vs-measured for every table printed here.

#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "tfr/common/stats.hpp"
#include "tfr/common/table.hpp"
#include "tfr/obs/metrics.hpp"
#include "tfr/obs/trace.hpp"

namespace tfr::bench {

inline int g_failures = 0;

/// Prints a shape check; tracks failures for the process exit code.
inline void expect(bool ok, const std::string& what) {
  std::cout << "EXPECT " << what << ": " << (ok ? "PASS" : "FAIL") << "\n";
  if (!ok) ++g_failures;
}

/// Exit code for main(): 0 iff every expect() passed.
inline int finish() {
  if (g_failures > 0)
    std::cout << "\n" << g_failures << " expectation(s) FAILED\n";
  return g_failures == 0 ? 0 : 1;
}

/// Machine-readable metric line, greppable like the EXPECT lines:
/// "METRIC <name> = <value>[ <unit>]".  Every bench reports its headline
/// quantities through this so runs can be scraped into dashboards.
inline void metric(const std::string& name, double value,
                   const std::string& unit = std::string()) {
  std::cout << "METRIC " << name << " = " << Table::fmt(value, 4);
  if (!unit.empty()) std::cout << " " << unit;
  std::cout << "\n";
}

/// Reports the standard derived quantities of a recorded trace under
/// `prefix` (fast-path hit rate, per-run RMR, convergence after failures
/// in Δ units when `delta` > 0).
inline void trace_metrics(const std::string& prefix,
                          const obs::TraceMetrics& m,
                          std::int64_t delta = 0) {
  metric(prefix + ".accesses", static_cast<double>(m.reads + m.writes));
  metric(prefix + ".rmr", static_cast<double>(m.rmr));
  metric(prefix + ".delays", static_cast<double>(m.delays));
  if (m.decides > 0) {
    metric(prefix + ".decides", static_cast<double>(m.decides));
    metric(prefix + ".fast_path_hit_rate", m.fast_path_hit_rate());
    metric(prefix + ".max_round", static_cast<double>(m.max_round));
  }
  if (m.timing_failures > 0)
    metric(prefix + ".timing_failures",
           static_cast<double>(m.timing_failures));
  if (m.violations > 0)
    metric(prefix + ".violations", static_cast<double>(m.violations));
  if (delta > 0 && m.timing_failures > 0 && m.last_decision >= 0)
    metric(prefix + ".convergence_after_failures",
           m.convergence_after_failures_in_delta(delta), "delta");
}

/// Formats a Samples summary as "mean (min..max)" in the given unit.
inline std::string summarize(const Samples& samples, double unit = 1.0,
                             int precision = 2) {
  if (samples.empty()) return "-";
  return Table::fmt(samples.mean() / unit, precision) + " (" +
         Table::fmt(samples.min() / unit, precision) + ".." +
         Table::fmt(samples.max() / unit, precision) + ")";
}

}  // namespace tfr::bench
