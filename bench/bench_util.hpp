// Shared scaffolding for the experiment harnesses (E1-E19).
//
// Each experiment reproduces one claim of the paper's evaluation
// (DESIGN.md §3 maps claims to experiments) and registers itself with
// the benchkit registry via TFR_BENCH_EXPERIMENT; the `tfr_bench` driver
// runs the selected tier in parallel workers, prints the aligned tables
// plus the machine-greppable "EXPECT …: PASS|FAIL" / "METRIC <name> =
// <value>[ <unit>]" lines, and emits the structured BENCH_*.json report
// (docs/BENCHMARKS.md documents the schema and workflows).
//
// Expect/metric state lives in the per-experiment benchkit::Recorder the
// registry passes to every run function (`rec` inside the macro body) —
// there is no process-global failure counter, so experiments are free to
// run concurrently in one process (and do run concurrently as forked
// workers).  EXPERIMENTS.md records paper-vs-measured for every table;
// its metric blocks are generated from bench/baseline.json by
// scripts/gen_experiments.py.

#pragma once

#include <cstdint>
#include <string>

#include "tfr/benchkit/recorder.hpp"
#include "tfr/benchkit/registry.hpp"
#include "tfr/common/stats.hpp"
#include "tfr/common/table.hpp"
#include "tfr/obs/metrics.hpp"
#include "tfr/obs/trace.hpp"

namespace tfr::bench {

using benchkit::Recorder;
using benchkit::Tier;

/// Records the standard derived quantities of a recorded trace under
/// `prefix` (fast-path hit rate, per-run RMR, convergence after failures
/// in Δ units when `delta` > 0).  Metric names are experiment-relative;
/// the report qualifies them with the experiment id.
inline void trace_metrics(Recorder& rec, const std::string& prefix,
                          const obs::TraceMetrics& m,
                          std::int64_t delta = 0) {
  rec.metric(prefix + ".accesses", static_cast<double>(m.reads + m.writes));
  rec.metric(prefix + ".rmr", static_cast<double>(m.rmr));
  rec.metric(prefix + ".delays", static_cast<double>(m.delays));
  if (m.decides > 0) {
    rec.metric(prefix + ".decides", static_cast<double>(m.decides));
    rec.metric(prefix + ".fast_path_hit_rate", m.fast_path_hit_rate());
    rec.metric(prefix + ".max_round", static_cast<double>(m.max_round));
  }
  if (m.timing_failures > 0)
    rec.metric(prefix + ".timing_failures",
               static_cast<double>(m.timing_failures));
  if (m.violations > 0)
    rec.metric(prefix + ".violations", static_cast<double>(m.violations));
  if (delta > 0 && m.timing_failures > 0 && m.last_decision >= 0)
    rec.metric(prefix + ".convergence_after_failures",
               m.convergence_after_failures_in_delta(delta), "delta");
}

/// Formats a Samples summary as "mean (min..max)" in the given unit.
inline std::string summarize(const Samples& samples, double unit = 1.0,
                             int precision = 2) {
  if (samples.empty()) return "-";
  return Table::fmt(samples.mean() / unit, precision) + " (" +
         Table::fmt(samples.min() / unit, precision) + ".." +
         Table::fmt(samples.max() / unit, precision) + ")";
}

}  // namespace tfr::bench
