// E19 — network fault adversary: degradation and recovery of the hardened
// message layer.  The NetAdversary makes the ABD channels lossy,
// duplicating and reordering; the retry/backoff-hardened clients must ride
// it out.  Claims under test (§4, message-passing extension):
//   * safety is unconditional: every ABD history linearizes at every drop
//     rate, and duplicated acks never fake a quorum;
//   * liveness degrades gracefully: completion time and retry counts grow
//     with the drop rate, but all operations complete (the degradation
//     curve);
//   * the acceptance fault mix (20% drop + 5% duplicate + reorder) leaves
//     both ABD and message consensus fully live with zero violations;
//   * after a partition heals, every stalled operation completes within
//     the convergence monitor's bound.

#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "tfr/msg/abd.hpp"
#include "tfr/msg/adversary.hpp"
#include "tfr/msg/consensus_msg.hpp"
#include "tfr/msg/convergence.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;

namespace {

constexpr sim::Duration kStep = 50;  // per-channel-access cost bound

/// The retry discipline every hardened client runs with (the same shape
/// the msg tests validate: windows and pauses in units of the step cost).
msg::RetryPolicy retry_policy() {
  msg::RetryPolicy policy;
  policy.timeout = 40 * kStep;
  policy.timeout_growth = 2.0;
  policy.max_timeout = 320 * kStep;
  policy.backoff = 2 * kStep;
  policy.backoff_growth = 2.0;
  policy.max_backoff = 40 * kStep;
  policy.jitter = kStep;
  policy.poll_every = 5;
  return policy;
}

/// The acceptance-criterion fault mix: 20% drop, 5% duplicate, reorder on.
msg::ChannelFaults acceptance_faults() {
  msg::ChannelFaults faults;
  faults.drop = 0.20;
  faults.duplicate = 0.05;
  faults.reorder = 0.25;
  faults.reorder_hold = 4 * kStep;
  return faults;
}

sim::Process workload(sim::Env env, msg::AbdClient& client, int reg,
                      std::int64_t value, int* done, sim::Time* finish) {
  co_await client.write(env, reg, value);
  co_await client.read(env, reg);
  ++*done;
  if (env.now() > *finish) *finish = env.now();
}

struct AbdRun {
  bool all_done = false;
  msg::ConvergenceMonitor::Report report;
  std::uint64_t safety_violations = 0;
  std::uint64_t retries = 0;
  std::uint64_t duplicate_acks = 0;
  std::uint64_t injected = 0;
  sim::Time finish = -1;
};

/// One n=3 ABD run (every node writes then reads one register) under
/// `faults`, optionally with a scheduled partition and convergence bound.
AbdRun run_abd(const msg::ChannelFaults& faults, std::uint64_t net_seed,
               std::uint64_t seed, const msg::Partition* partition = nullptr,
               sim::Duration bound = 0) {
  sim::Simulation s(sim::make_uniform_timing(1, kStep), {.seed = seed});
  const int n = 3;
  msg::Network net(s.space(), 2 * n);
  msg::NetAdversary adversary(net_seed);
  adversary.set_default_faults(faults);
  if (partition != nullptr) adversary.add_partition(*partition);
  adversary.arm(s);
  net.set_adversary(&adversary);
  msg::ConvergenceMonitor monitor;
  monitor.set_adversary(&adversary);
  if (bound > 0) monitor.set_bound(bound);

  int done = 0;
  sim::Time finish = -1;
  std::vector<std::unique_ptr<msg::AbdClient>> clients;
  for (int i = 0; i < n; ++i) {
    clients.push_back(
        std::make_unique<msg::AbdClient>(net, i, n, retry_policy()));
    clients.back()->set_monitor(&monitor);
  }
  for (int i = 0; i < n; ++i) {
    s.spawn([&clients, &done, &finish, i](sim::Env env) {
      return workload(env, *clients[static_cast<std::size_t>(i)], 1, 100 + i,
                      &done, &finish);
    });
  }
  for (int i = 0; i < n; ++i) {
    s.spawn(
        [&net, i, n](sim::Env env) { return msg::abd_server(env, net, i, n); });
  }
  s.run(8'000'000'000, [&] { return done == n; });

  AbdRun out;
  out.all_done = done == n;
  out.report = monitor.check();
  out.safety_violations = monitor.safety_violations();
  out.injected = adversary.drops() + adversary.duplicates() +
                 adversary.delays() + adversary.reorders();
  for (const auto& c : clients) {
    out.retries += c->retries();
    out.duplicate_acks += c->duplicate_acks();
  }
  out.finish = finish;
  return out;
}

}  // namespace

TFR_BENCH_EXPERIMENT(E19, "section 4 (network failures)", bench::Tier::kSmoke,
                     "network fault adversary: hardened ABD degrades "
                     "gracefully, converges after partitions, never "
                     "unorders") {
  constexpr std::uint64_t kSeeds = 6;

  // (a) degradation curve: completion time and retries vs drop rate.
  Table curve("ABD degradation vs drop rate (n = 3, per-node write+read)");
  curve.header({"drop %", "completed", "linearizable",
                "finish time / step (mean, min..max)", "retries (total)"});
  bool curve_all_done = true;
  bool curve_linearizable = true;
  std::uint64_t curve_violations = 0;
  double retries_at_zero = 0;
  double retries_at_thirty = 0;
  double finish_at_zero = 0;
  double finish_at_thirty = 0;
  for (const int drop_pct : {0, 5, 10, 20, 30}) {
    msg::ChannelFaults faults;
    faults.drop = drop_pct / 100.0;
    Samples finishes;
    std::uint64_t retries = 0;
    bool done = true;
    bool linearizable = true;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      const AbdRun r = run_abd(faults, /*net_seed=*/7 + seed, seed);
      done &= r.all_done;
      linearizable &= r.report.linearizable;
      curve_violations += r.safety_violations;
      retries += r.retries;
      if (r.finish >= 0) finishes.add(static_cast<double>(r.finish));
    }
    curve_all_done &= done;
    curve_linearizable &= linearizable;
    if (drop_pct == 0) {
      retries_at_zero = static_cast<double>(retries);
      finish_at_zero = finishes.mean();
    }
    if (drop_pct == 30) {
      retries_at_thirty = static_cast<double>(retries);
      finish_at_thirty = finishes.mean();
    }
    curve.row({Table::fmt(static_cast<long long>(drop_pct)),
               done ? "yes" : "NO", linearizable ? "yes" : "NO",
               bench::summarize(finishes, static_cast<double>(kStep)),
               Table::fmt(static_cast<unsigned long long>(retries))});
  }
  curve.print(rec.out());
  rec.metric("curve.retries.drop0", retries_at_zero);
  rec.metric("curve.retries.drop30", retries_at_thirty);
  rec.metric("curve.finish_steps.drop0", finish_at_zero / kStep);
  rec.metric("curve.finish_steps.drop30", finish_at_thirty / kStep);
  rec.metric("curve.safety_violations", static_cast<double>(curve_violations));
  rec.expect(curve_all_done,
             "every operation completes at every drop rate up to 30%");
  rec.expect(curve_linearizable && curve_violations == 0,
             "safety is drop-rate independent (all histories linearize)");
  rec.expect(retries_at_zero == 0,
             "a reliable network needs no retries (hardening is free)");
  rec.expect(retries_at_thirty > 0 && finish_at_thirty > finish_at_zero,
             "losses cost retries and time, never correctness "
             "(graceful degradation)");

  // (b) the acceptance fault mix: ABD and message consensus stay live.
  std::uint64_t mix_violations = 0;
  std::uint64_t mix_duplicate_acks = 0;
  std::uint64_t mix_injected = 0;
  bool mix_all_done = true;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const AbdRun r = run_abd(acceptance_faults(), /*net_seed=*/40 + seed,
                             seed);
    mix_all_done &= r.all_done && r.report.linearizable;
    mix_violations += r.safety_violations;
    mix_duplicate_acks += r.duplicate_acks;
    mix_injected += r.injected;
  }
  bool consensus_all_decided = true;
  std::uint64_t consensus_violations = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    sim::Simulation s(sim::make_uniform_timing(1, kStep), {.seed = seed});
    const int n = 3;
    msg::Network net(s.space(), 2 * n);
    msg::NetAdversary adversary(60 + seed);
    adversary.set_default_faults(acceptance_faults());
    net.set_adversary(&adversary);
    msg::MsgConsensus consensus(net, n, 60 * kStep, /*reg_base=*/0,
                                retry_policy());
    consensus.monitor().throw_on_violation(false);
    for (int i = 0; i < n; ++i) {
      consensus.monitor().set_input(i, i % 2);
      s.spawn([&consensus, i](sim::Env env) {
        return consensus.participant(env, i, i % 2);
      });
    }
    for (int i = 0; i < n; ++i) {
      s.spawn([&net, i, n](sim::Env env) {
        return msg::abd_server(env, net, i, n);
      });
    }
    s.run(8'000'000'000, [&] {
      return consensus.monitor().decided_count() == static_cast<std::size_t>(n);
    });
    consensus_all_decided &= consensus.monitor().all_decided(n);
    consensus_violations += consensus.monitor().agreement_violations() +
                            consensus.monitor().validity_violations();
  }
  Table mix("acceptance fault mix: 20% drop + 5% duplicate + 25% reorder");
  mix.header({"workload", "completed", "violations", "faults injected"});
  mix.row({"ABD write+read (6 seeds)", mix_all_done ? "yes" : "NO",
           Table::fmt(static_cast<unsigned long long>(mix_violations)),
           Table::fmt(static_cast<unsigned long long>(mix_injected))});
  mix.row({"consensus n=3 (3 seeds)", consensus_all_decided ? "yes" : "NO",
           Table::fmt(static_cast<unsigned long long>(consensus_violations)),
           "-"});
  mix.print(rec.out());
  rec.metric("mix.safety_violations",
             static_cast<double>(mix_violations + consensus_violations));
  rec.metric("mix.duplicate_acks_suppressed",
             static_cast<double>(mix_duplicate_acks));
  rec.expect(mix_all_done && mix_violations == 0,
             "ABD completes all operations safely under the acceptance mix");
  rec.expect(consensus_all_decided && consensus_violations == 0,
             "message consensus decides safely under the acceptance mix");

  // (c) partition heal: stalled operations converge within the bound.
  bool heal_ok = true;
  bool heal_retried = false;
  double worst_lag_steps = 0;
  const sim::Time heal = 2'000 * kStep;
  const sim::Duration bound = 1'000 * kStep;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    msg::Partition partition;
    partition.begin = 0;
    partition.heal = heal;
    partition.group = {0, 3 + 0};  // node 0's client+server endpoints
    const AbdRun r = run_abd({}, /*net_seed=*/21, seed, &partition, bound);
    heal_ok &= r.all_done && r.report.ok() && r.report.anchor >= heal;
    heal_retried |= r.retries > 0;
    if (r.report.worst_lag / static_cast<double>(kStep) > worst_lag_steps)
      worst_lag_steps = r.report.worst_lag / static_cast<double>(kStep);
  }
  Table part("partition heal (node 0 cut for 2000 steps, bound 1000 steps)");
  part.header({"converged within bound", "worst lag / step"});
  part.row({heal_ok ? "yes" : "NO", Table::fmt(worst_lag_steps, 2)});
  part.print(rec.out());
  rec.metric("heal.worst_lag_steps", worst_lag_steps);
  rec.expect(heal_ok,
             "after the heal every stalled operation completes within the "
             "convergence bound");
  rec.expect(heal_retried,
             "the partitioned node had to retry (the cut was real)");
}
