// tfr_bench — the unified experiment driver (DESIGN.md §3, docs/BENCHMARKS.md).
//
// Runs the registered experiments (E1-E18, one per paper claim) in
// parallel worker processes, prints the classic paper-style tables and
// EXPECT lines in id order, emits a structured BENCH_<timestamp>.json
// report, and optionally gates the run against a committed baseline.
//
//   tfr_bench --tier smoke --jobs 2                 # fast CI gate
//   tfr_bench --tier full --json bench/baseline.json  # refresh baseline
//   tfr_bench --only E6,E7 --baseline bench/baseline.json
//
// Exit codes: 0 ok; 1 EXPECT failure or crashed worker; 2 baseline
// regression; 3 usage error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tfr/benchkit/baseline.hpp"
#include "tfr/benchkit/registry.hpp"
#include "tfr/benchkit/runner.hpp"
#include "tfr/common/table.hpp"

using namespace tfr;
using benchkit::Tier;

namespace {

struct Options {
  Tier tier = Tier::kFull;
  std::vector<std::string> only;
  int jobs = 2;
  bool emit_json = true;
  std::string json_path;  ///< Empty = BENCH_<timestamp>.json in the cwd.
  std::string baseline_path;
  bool list = false;
};

void usage(std::ostream& os) {
  os << "usage: tfr_bench [options]\n"
        "  --list              print the experiment catalog and exit\n"
        "  --tier smoke|full   tier to run (default full = everything)\n"
        "  --only E1,E7,...    run exactly these experiments\n"
        "  --jobs N            parallel worker processes (default 2)\n"
        "  --json PATH         report path (default BENCH_<timestamp>.json)\n"
        "  --no-json           skip the JSON report\n"
        "  --baseline PATH     diff metrics against PATH; exit 2 on "
        "regression\n";
}

std::vector<std::string> split_commas(const std::string& arg) {
  std::vector<std::string> out;
  std::stringstream stream(arg);
  std::string token;
  while (std::getline(stream, token, ','))
    if (!token.empty()) out.push_back(token);
  return out;
}

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "tfr_bench: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--tier") {
      const char* v = value();
      if (v == nullptr) return false;
      const std::string tier = v;
      if (tier == "smoke") {
        options.tier = Tier::kSmoke;
      } else if (tier == "full") {
        options.tier = Tier::kFull;
      } else {
        std::cerr << "tfr_bench: unknown tier '" << tier << "'\n";
        return false;
      }
    } else if (arg == "--only") {
      const char* v = value();
      if (v == nullptr) return false;
      options.only = split_commas(v);
    } else if (arg == "--jobs") {
      const char* v = value();
      if (v == nullptr) return false;
      options.jobs = std::max(1, std::atoi(v));
    } else if (arg == "--json") {
      const char* v = value();
      if (v == nullptr) return false;
      options.json_path = v;
      options.emit_json = true;
    } else if (arg == "--no-json") {
      options.emit_json = false;
    } else if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) return false;
      options.baseline_path = v;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "tfr_bench: unknown option '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

std::string default_json_path() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[40];
  std::strftime(buf, sizeof buf, "BENCH_%Y%m%dT%H%M%SZ.json", &tm);
  return buf;
}

std::vector<const benchkit::Experiment*> select(const Options& options,
                                                bool& ok) {
  ok = true;
  auto& registry = benchkit::Registry::instance();
  if (options.only.empty()) return registry.select(options.tier);
  std::vector<const benchkit::Experiment*> out;
  for (const std::string& id : options.only) {
    const benchkit::Experiment* experiment = registry.find(id);
    if (experiment == nullptr) {
      std::cerr << "tfr_bench: unknown experiment '" << id
                << "' (see --list)\n";
      ok = false;
      return {};
    }
    out.push_back(experiment);
  }
  return out;
}

void print_catalog() {
  Table table("experiment catalog");
  table.header({"id", "tier", "claim", "title"});
  for (const benchkit::Experiment* experiment :
       benchkit::Registry::instance().all())
    table.row({experiment->id, benchkit::tier_name(experiment->tier),
               experiment->claim, experiment->title});
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    usage(std::cerr);
    return 3;
  }
  if (options.list) {
    print_catalog();
    return 0;
  }

  bool selection_ok = false;
  const auto experiments = select(options, selection_ok);
  if (!selection_ok) return 3;
  if (experiments.empty()) {
    std::cerr << "tfr_bench: no experiments selected\n";
    return 3;
  }

  const auto outcomes = benchkit::run_parallel(experiments, options.jobs);
  benchkit::print_outcomes(std::cout, outcomes);

  int total_failures = 0;
  bool all_completed = true;
  for (const auto& outcome : outcomes) {
    total_failures += outcome.failures();
    all_completed &= outcome.completed;
  }

  const std::string tier_label =
      options.only.empty() ? benchkit::tier_name(options.tier) : "custom";
  const benchkit::Json report =
      benchkit::make_report(outcomes, tier_label);
  if (options.emit_json) {
    const std::string path = options.json_path.empty() ? default_json_path()
                                                       : options.json_path;
    try {
      benchkit::save_json_file(path, report);
      std::cout << "\nwrote " << path << "\n";
    } catch (const std::exception& e) {
      std::cerr << "tfr_bench: " << e.what() << "\n";
      return 3;
    }
  }

  bool regression = false;
  if (!options.baseline_path.empty()) {
    try {
      const benchkit::Json baseline =
          benchkit::load_json_file(options.baseline_path);
      const auto diff = benchkit::diff_reports(
          baseline, report, benchkit::tolerance_rules(baseline));
      std::cout << "\n";
      benchkit::print_diff(std::cout, diff);
      regression = !diff.ok();
    } catch (const std::exception& e) {
      std::cerr << "tfr_bench: " << e.what() << "\n";
      return 3;
    }
  }

  if (total_failures > 0 || !all_completed) return 1;
  if (regression) return 2;
  return 0;
}
