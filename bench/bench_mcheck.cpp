// E18 — systematic exploration at a glance: throughput of the mcheck
// engine, the layered partial-order reductions (sleep sets, source-set
// DPOR), the work-sharing parallel mode, and the real-thread scenarios
// explored through the atomic interposition seam.
//
// Workload: the flagship small configurations (Algorithm 1 n=2 round
// bound 2, bare Fischer n=2, Algorithm 3 n=2), each explored with the
// default source-set DPOR; the consensus scenario additionally with
// plain sleep sets (DPOR ablation) and with naive DFS to measure the
// pruning factors, the naive run once more with four forked workers
// (--jobs 4 equivalent) to measure parallel scaling, and the four rt
// checks (real Fischer / Algorithm 3 / AtomicMutex code instantiated
// over ShimAtomics, plus the EventCount torn-epoch lost-wakeup hunt).
// Series: executions, explored states, executions/second, parallel
// speedup.  Expected shape: DPOR < sleep sets < naive DFS on the same
// (clean) verdict, bare Fischer yields a violation while Algorithm 3
// does not — through the seam exactly as in the simulator transcription
// — the torn epoch loses a wakeup while the documented order does not,
// and the parallel run reproduces the serial counters exactly (its
// speedup is asserted only on hosts with >= 4 cores; the counters are
// asserted everywhere).  Exploration counters (executions, states,
// sleep_blocked, races, source_pruned) are exactly reproducible and
// baseline-gated with zero tolerance, for the sim and rt rows alike.

#include <chrono>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "tfr/mcheck/explorer.hpp"
#include "tfr/mcheck/rt_scenarios.hpp"
#include "tfr/mcheck/scenarios.hpp"

using namespace tfr;

namespace {

struct Timed {
  mcheck::CheckResult result;
  double seconds = 0;
};

Timed timed_check(const mcheck::CheckScenario& scenario,
                  const mcheck::ExploreConfig& config) {
  const auto begin = std::chrono::steady_clock::now();
  Timed timed;
  timed.result = mcheck::check(scenario, config);
  timed.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  return timed;
}

mcheck::ExploreConfig base_config() {
  mcheck::ExploreConfig config;
  config.delta = 2;
  config.failure_cost = 5;
  config.max_failures = 1;
  config.slow_budget = 1;
  return config;
}

double rate(const Timed& timed) {
  return timed.seconds > 0
             ? static_cast<double>(timed.result.stats.executions) /
                   timed.seconds
             : 0.0;
}

}  // namespace

TFR_BENCH_EXPERIMENT(E18, "systematic exploration", bench::Tier::kFull,
                     "mcheck exploration throughput and sleep-set "
                     "reduction") {
  const mcheck::CheckScenario consensus = mcheck::make_consensus_scenario({});
  mcheck::MutexScenarioConfig fischer_cfg;
  const mcheck::CheckScenario fischer =
      mcheck::make_mutex_scenario(fischer_cfg);
  mcheck::MutexScenarioConfig tfr_cfg;
  tfr_cfg.algorithm = mcheck::MutexScenarioConfig::Algorithm::kTfrStarvationFree;
  const mcheck::CheckScenario tfr_mutex = mcheck::make_mutex_scenario(tfr_cfg);

  mcheck::RtMutexScenarioConfig rt_tfr_cfg;
  rt_tfr_cfg.algorithm =
      mcheck::RtMutexScenarioConfig::Algorithm::kTfrStarvationFree;
  mcheck::RtMutexScenarioConfig rt_lock_cfg;
  rt_lock_cfg.algorithm = mcheck::RtMutexScenarioConfig::Algorithm::kAtomicLock;
  mcheck::RtEventCountScenarioConfig ec_fixed_cfg;
  ec_fixed_cfg.torn_epoch = false;

  mcheck::ExploreConfig reduced = base_config();
  mcheck::ExploreConfig sleep_only = base_config();
  sleep_only.reduction = mcheck::Reduction::kSleepSets;
  mcheck::ExploreConfig naive = base_config();
  naive.reduction = mcheck::Reduction::kNone;
  mcheck::ExploreConfig mutex_config = base_config();
  mutex_config.slow_budget = -1;
  mcheck::ExploreConfig eventcount_config = base_config();
  eventcount_config.max_failures = 0;
  eventcount_config.slow_budget = 0;

  mcheck::ExploreConfig naive_parallel = naive;
  naive_parallel.jobs = 4;

  const Timed consensus_reduced = timed_check(consensus, reduced);
  const Timed consensus_sleep = timed_check(consensus, sleep_only);
  const Timed consensus_naive = timed_check(consensus, naive);
  const Timed naive_jobs4 = timed_check(consensus, naive_parallel);
  const Timed fischer_run = timed_check(fischer, mutex_config);
  const Timed tfr_run = timed_check(tfr_mutex, base_config());
  const Timed rt_fischer_run =
      timed_check(mcheck::make_rt_mutex_scenario({}), base_config());
  const Timed rt_tfr_run =
      timed_check(mcheck::make_rt_mutex_scenario(rt_tfr_cfg), base_config());
  const Timed rt_lock_run =
      timed_check(mcheck::make_rt_mutex_scenario(rt_lock_cfg), base_config());
  const Timed ec_torn_run = timed_check(mcheck::make_rt_eventcount_scenario({}),
                                        eventcount_config);
  const Timed ec_fixed_run = timed_check(
      mcheck::make_rt_eventcount_scenario(ec_fixed_cfg), eventcount_config);

  Table table;
  table.header({"check", "executions", "states", "violation", "exec/s"});
  const auto row = [&table](const char* name, const Timed& timed) {
    table.row({name,
               Table::fmt(static_cast<double>(timed.result.stats.executions), 0),
               Table::fmt(static_cast<double>(timed.result.stats.states), 0),
               timed.result.violation ? "yes" : "no",
               Table::fmt(rate(timed), 0)});
  };
  row("consensus n=2 (source DPOR)", consensus_reduced);
  row("consensus n=2 (sleep sets)", consensus_sleep);
  row("consensus n=2 (naive DFS)", consensus_naive);
  row("naive DFS, 4 workers", naive_jobs4);
  row("fischer n=2 (1 failure)", fischer_run);
  row("tfr-mutex n=2 (1 failure)", tfr_run);
  row("rt fischer n=2 (shim)", rt_fischer_run);
  row("rt tfr-mutex n=2 (shim)", rt_tfr_run);
  row("rt atomic-lock n=2 (shim)", rt_lock_run);
  row("rt eventcount torn (shim)", ec_torn_run);
  row("rt eventcount fixed (shim)", ec_fixed_run);
  table.print(rec.out());

  const double reduction =
      consensus_reduced.result.stats.executions > 0
          ? static_cast<double>(consensus_naive.result.stats.executions) /
                static_cast<double>(consensus_reduced.result.stats.executions)
          : 0.0;
  rec.metric("consensus.executions",
             static_cast<double>(consensus_reduced.result.stats.executions));
  rec.metric("consensus.states",
             static_cast<double>(consensus_reduced.result.stats.states));
  rec.metric("consensus.sleep_blocked",
             static_cast<double>(consensus_reduced.result.stats.sleep_blocked));
  rec.metric("consensus.races",
             static_cast<double>(consensus_reduced.result.stats.races_detected));
  rec.metric("consensus.source_pruned",
             static_cast<double>(consensus_reduced.result.stats.source_pruned));
  rec.metric("consensus.reduction_factor", reduction, "x");
  rec.metric("consensus.exec_per_sec", rate(consensus_reduced), "1/s");
  rec.metric("consensus_sleepsets.executions",
             static_cast<double>(consensus_sleep.result.stats.executions));
  rec.metric("consensus_naive.executions",
             static_cast<double>(consensus_naive.result.stats.executions));
  rec.metric("fischer.executions_to_violation",
             static_cast<double>(fischer_run.result.stats.executions));
  rec.metric("tfr_mutex.executions",
             static_cast<double>(tfr_run.result.stats.executions));
  rec.metric("rt_fischer.executions_to_violation",
             static_cast<double>(rt_fischer_run.result.stats.executions));
  rec.metric("rt_fischer.races",
             static_cast<double>(rt_fischer_run.result.stats.races_detected));
  rec.metric("rt_tfr_mutex.executions",
             static_cast<double>(rt_tfr_run.result.stats.executions));
  rec.metric("rt_tfr_mutex.states",
             static_cast<double>(rt_tfr_run.result.stats.states));
  rec.metric("rt_atomic_lock.executions",
             static_cast<double>(rt_lock_run.result.stats.executions));
  rec.metric("rt_eventcount_torn.executions",
             static_cast<double>(ec_torn_run.result.stats.executions));
  rec.metric("rt_eventcount_fixed.executions",
             static_cast<double>(ec_fixed_run.result.stats.executions));

  // Parallel scaling is a property of the host (and meaningless on a
  // single core), so the wall-clock series is tracked but never gated.
  const double speedup = naive_jobs4.seconds > 0
                             ? consensus_naive.seconds / naive_jobs4.seconds
                             : 0.0;
  rec.metric("parallel.naive_serial_wall_s", consensus_naive.seconds, "s");
  rec.metric("parallel.naive_jobs4_wall_s", naive_jobs4.seconds, "s");
  rec.metric("parallel.naive_jobs4_speedup", speedup, "x");

  rec.expect(!consensus_reduced.result.violation &&
                 consensus_reduced.result.stats.complete,
             "Algorithm 1 n=2 verifies clean with source-set DPOR");
  rec.expect(!consensus_naive.result.violation &&
                 consensus_naive.result.stats.complete,
             "naive DFS reaches the same clean verdict");
  rec.expect(consensus_reduced.result.stats.executions <
                 consensus_naive.result.stats.executions,
             "the reduction explores strictly fewer executions than naive DFS");
  rec.expect(consensus_reduced.result.stats.executions <
                     consensus_sleep.result.stats.executions &&
                 !consensus_sleep.result.violation &&
                 consensus_sleep.result.stats.complete,
             "source-set DPOR prunes strictly beyond plain sleep sets");
  rec.expect(reduction >= 2.0, "the reduction factor is at least 2x");
  rec.expect(fischer_run.result.violation,
             "bare Fischer yields a mutual-exclusion violation");
  rec.expect(!tfr_run.result.violation && tfr_run.result.stats.complete,
             "Algorithm 3 n=2 verifies clean under the same failure budget");
  rec.expect(rt_fischer_run.result.violation,
             "real-thread Fischer violates through the interposition seam");
  rec.expect(!rt_tfr_run.result.violation && rt_tfr_run.result.stats.complete,
             "real-thread Algorithm 3 verifies clean through the seam");
  rec.expect(!rt_lock_run.result.violation &&
                 rt_lock_run.result.stats.complete,
             "AtomicMutex wait/notify protocol verifies clean through the seam");
  rec.expect(ec_torn_run.result.violation,
             "the torn-epoch EventCount loses a wakeup");
  rec.expect(!ec_fixed_run.result.violation &&
                 ec_fixed_run.result.stats.complete,
             "the documented EventCount publication order verifies clean");
  rec.expect(naive_jobs4.result.stats.executions ==
                     consensus_naive.result.stats.executions &&
                 naive_jobs4.result.stats.states ==
                     consensus_naive.result.stats.states &&
                 naive_jobs4.result.stats.transitions ==
                     consensus_naive.result.stats.transitions &&
                 !naive_jobs4.result.violation &&
                 naive_jobs4.result.stats.complete,
             "4 forked workers reproduce the serial counters exactly");
  if (std::thread::hardware_concurrency() >= 4) {
    rec.expect(speedup >= 2.0,
               "4 workers explore the naive tree at least 2x faster");
  }
}
