// E18 — systematic exploration at a glance: throughput of the mcheck
// engine and the effect of the sleep-set partial-order reduction.
//
// Workload: the flagship small configurations (Algorithm 1 n=2 round
// bound 2, bare Fischer n=2, Algorithm 3 n=2), each explored with the
// reduction on; the consensus scenario additionally with naive DFS to
// measure the pruning factor.  Series: executions, explored states,
// executions/second.  Expected shape: the reduced run explores strictly
// fewer executions than naive DFS with the same (clean) verdict, and
// bare Fischer yields a violation while Algorithm 3 does not.

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "tfr/mcheck/explorer.hpp"
#include "tfr/mcheck/scenarios.hpp"

using namespace tfr;

namespace {

struct Timed {
  mcheck::CheckResult result;
  double seconds = 0;
};

Timed timed_check(const mcheck::CheckScenario& scenario,
                  const mcheck::ExploreConfig& config) {
  const auto begin = std::chrono::steady_clock::now();
  Timed timed;
  timed.result = mcheck::check(scenario, config);
  timed.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  return timed;
}

mcheck::ExploreConfig base_config() {
  mcheck::ExploreConfig config;
  config.delta = 2;
  config.failure_cost = 5;
  config.max_failures = 1;
  config.slow_budget = 1;
  return config;
}

double rate(const Timed& timed) {
  return timed.seconds > 0
             ? static_cast<double>(timed.result.stats.executions) /
                   timed.seconds
             : 0.0;
}

}  // namespace

TFR_BENCH_EXPERIMENT(E18, "systematic exploration", bench::Tier::kFull,
                     "mcheck exploration throughput and sleep-set "
                     "reduction") {
  const mcheck::CheckScenario consensus = mcheck::make_consensus_scenario({});
  mcheck::MutexScenarioConfig fischer_cfg;
  const mcheck::CheckScenario fischer =
      mcheck::make_mutex_scenario(fischer_cfg);
  mcheck::MutexScenarioConfig tfr_cfg;
  tfr_cfg.algorithm = mcheck::MutexScenarioConfig::Algorithm::kTfrStarvationFree;
  const mcheck::CheckScenario tfr_mutex = mcheck::make_mutex_scenario(tfr_cfg);

  mcheck::ExploreConfig reduced = base_config();
  mcheck::ExploreConfig naive = base_config();
  naive.por = false;
  mcheck::ExploreConfig mutex_config = base_config();
  mutex_config.slow_budget = -1;

  const Timed consensus_reduced = timed_check(consensus, reduced);
  const Timed consensus_naive = timed_check(consensus, naive);
  const Timed fischer_run = timed_check(fischer, mutex_config);
  const Timed tfr_run = timed_check(tfr_mutex, base_config());

  Table table;
  table.header({"check", "executions", "states", "violation", "exec/s"});
  const auto row = [&table](const char* name, const Timed& timed) {
    table.row({name,
               Table::fmt(static_cast<double>(timed.result.stats.executions), 0),
               Table::fmt(static_cast<double>(timed.result.stats.states), 0),
               timed.result.violation ? "yes" : "no",
               Table::fmt(rate(timed), 0)});
  };
  row("consensus n=2 (sleep sets)", consensus_reduced);
  row("consensus n=2 (naive DFS)", consensus_naive);
  row("fischer n=2 (1 failure)", fischer_run);
  row("tfr-mutex n=2 (1 failure)", tfr_run);
  table.print(rec.out());

  const double reduction =
      consensus_reduced.result.stats.executions > 0
          ? static_cast<double>(consensus_naive.result.stats.executions) /
                static_cast<double>(consensus_reduced.result.stats.executions)
          : 0.0;
  rec.metric("consensus.executions",
             static_cast<double>(consensus_reduced.result.stats.executions));
  rec.metric("consensus.reduction_factor", reduction, "x");
  rec.metric("consensus.exec_per_sec", rate(consensus_reduced), "1/s");
  rec.metric("fischer.executions_to_violation",
             static_cast<double>(fischer_run.result.stats.executions));

  rec.expect(!consensus_reduced.result.violation &&
                 consensus_reduced.result.stats.complete,
             "Algorithm 1 n=2 verifies clean with sleep sets");
  rec.expect(!consensus_naive.result.violation &&
                 consensus_naive.result.stats.complete,
             "naive DFS reaches the same clean verdict");
  rec.expect(consensus_reduced.result.stats.executions <
                 consensus_naive.result.stats.executions,
             "sleep sets explore strictly fewer executions than naive DFS");
  rec.expect(reduction >= 2.0, "the reduction factor is at least 2x");
  rec.expect(fischer_run.result.violation,
             "bare Fischer yields a mutual-exclusion violation");
  rec.expect(!tfr_run.result.violation && tfr_run.result.stats.complete,
             "Algorithm 3 n=2 verifies clean under the same failure budget");
}
