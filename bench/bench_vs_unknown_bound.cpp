// E5 — §1.5 comparison against the unknown-bound model (Alur-Attiya-
// Taubenfeld [3]): knowing Delta buys a hard c·Delta bound.  The
// unknown-bound algorithm must ramp its estimate (doubling per round), so
// under a jittery-but-legal schedule it burns extra rounds and its
// normalized decision time grows with the true bound, while Algorithm 1's
// stays flat at a small constant.
//
// Workload: n=4 split inputs; true bound beta swept over decades; both
// algorithms run on identical schedules (same seeds).  Series: decision
// time / beta, rounds.  Expected shape: known-bound flat (<= 15) and at
// most 2 rounds; unknown-bound uses more rounds on average and its
// worst-case normalized time exceeds the known-bound algorithm's.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "tfr/baseline/unknown_bound_sim.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;

namespace {
constexpr std::uint64_t kSeeds = 30;

std::vector<int> split_inputs(std::size_t n) {
  std::vector<int> inputs(n);
  for (std::size_t i = 0; i < n; ++i) inputs[i] = static_cast<int>(i % 2);
  return inputs;
}
}  // namespace

TFR_BENCH_EXPERIMENT(E5, "section 1.5", bench::Tier::kSmoke,
                     "known-bound Algorithm 1 vs unknown-bound baseline "
                     "(estimate doubling, after [3])") {
  Table table;
  table.header({"true bound beta", "algorithm", "decide time / beta",
                "rounds (mean)", "rounds (max)"});

  bool known_flat = true;
  bool unknown_more_rounds_somewhere = false;
  double known_worst = 0;
  double known_rounds_largest_beta = 0;
  double unknown_rounds_largest_beta = 0;

  for (const sim::Duration beta : {64, 256, 1024, 4096}) {
    Samples known_time, unknown_time, known_rounds, unknown_rounds;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      const auto known = core::run_consensus(
          split_inputs(4), beta, sim::make_uniform_timing(1, beta), seed);
      const auto unknown = baseline::run_unknown_bound_consensus(
          split_inputs(4), 1, sim::make_uniform_timing(1, beta), seed,
          1'000'000'000);
      known_time.add(static_cast<double>(known.last_decision));
      unknown_time.add(static_cast<double>(unknown.last_decision));
      known_rounds.add(static_cast<double>(known.max_round + 1));
      unknown_rounds.add(static_cast<double>(unknown.max_round + 1));
      known_flat &= known.all_decided && (known.max_round <= 1);
    }
    known_worst = std::max(known_worst,
                           known_time.max() / static_cast<double>(beta));
    if (unknown_rounds.mean() > known_rounds.mean())
      unknown_more_rounds_somewhere = true;
    known_rounds_largest_beta = known_rounds.mean();
    unknown_rounds_largest_beta = unknown_rounds.mean();

    table.row({Table::fmt(static_cast<long long>(beta)), "known-bound",
               bench::summarize(known_time, static_cast<double>(beta)),
               Table::fmt(known_rounds.mean(), 2),
               Table::fmt(known_rounds.max(), 0)});
    table.row({Table::fmt(static_cast<long long>(beta)), "unknown-bound",
               bench::summarize(unknown_time, static_cast<double>(beta)),
               Table::fmt(unknown_rounds.mean(), 2),
               Table::fmt(unknown_rounds.max(), 0)});
  }
  table.print(rec.out());

  rec.metric("known.normalized_time.worst", known_worst, "beta");
  rec.metric("known.rounds.mean_at_largest_beta", known_rounds_largest_beta);
  rec.metric("unknown.rounds.mean_at_largest_beta",
             unknown_rounds_largest_beta);
  rec.expect(known_flat,
             "known-bound algorithm always decides within two rounds");
  rec.expect(known_worst <= 15.0,
             "known-bound normalized decision time <= 15 (measured " +
                 Table::fmt(known_worst) + ")");
  rec.expect(unknown_more_rounds_somewhere,
             "unknown-bound algorithm uses more rounds on average for "
             "some true bound");
}
