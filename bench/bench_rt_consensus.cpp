// E12a — real-thread microbenchmarks (google-benchmark) for Algorithm 1
// and its multi-valued extension on std::atomic registers: the "each
// individual machine architecture" measurements §3.3 calls for when
// picking optimistic(Delta).
//
// Series: solo propose latency (the 7-step fast path in wall-clock time),
// decided-object adoption latency, multi-valued propose latency by bit
// width, and contended propose throughput at 2/4 threads.

#include <benchmark/benchmark.h>

#include <memory>
#include <thread>

#include "tfr/core/consensus_rt.hpp"
#include "tfr/derived/derived_rt.hpp"

namespace {

using tfr::rt::Nanos;
using tfr::rt::RtConsensus;
using tfr::rt::RtMultiConsensus;

void BM_SoloPropose(benchmark::State& state) {
  for (auto _ : state) {
    RtConsensus consensus({.delta = Nanos{1000}});
    benchmark::DoNotOptimize(consensus.propose_value(1));
  }
}
BENCHMARK(BM_SoloPropose);

void BM_AdoptDecided(benchmark::State& state) {
  RtConsensus consensus({.delta = Nanos{1000}});
  consensus.propose_value(1);
  for (auto _ : state) {
    // A late arrival reads the decision in one step.
    benchmark::DoNotOptimize(consensus.propose_value(0));
  }
}
BENCHMARK(BM_AdoptDecided);

void BM_MultiValuePropose(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RtMultiConsensus mc({.delta = Nanos{1000}, .bits = bits});
    benchmark::DoNotOptimize(mc.propose((std::int64_t{1} << (bits - 1)) - 1));
  }
  state.SetLabel(std::to_string(bits) + " bits");
}
BENCHMARK(BM_MultiValuePropose)->Arg(8)->Arg(24)->Arg(62);

void BM_ContendedPropose(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RtConsensus consensus({.delta = Nanos{2000}});
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers.emplace_back(
          [&consensus, i] { consensus.propose_value(i % 2); });
    }
    for (auto& t : workers) t.join();
  }
  state.SetLabel(std::to_string(threads) + " threads (incl. spawn cost)");
}
BENCHMARK(BM_ContendedPropose)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
