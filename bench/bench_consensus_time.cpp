// E1 — Theorem 2.1, bullet 1: in the absence of timing failures, every
// process decides within 15·Δ, independent of the number of processes and
// of the (legal) schedule.
//
// Workload: n participants with all-same / split inputs under the two
// extreme legal schedules (lockstep at Δ; uniform jitter in [1, Δ]).
// Series reported: decision time in Δ units (mean, min..max over seeds),
// rounds used.  Expected shape: flat in n, bounded by 15, rounds <= 2.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;

namespace {

using sim::Duration;

constexpr Duration kDelta = 100;
constexpr std::uint64_t kSeeds = 20;

std::vector<int> make_inputs(std::size_t n, bool split) {
  std::vector<int> inputs(n, 1);
  if (split)
    for (std::size_t i = 0; i < n; ++i) inputs[i] = static_cast<int>(i % 2);
  return inputs;
}

std::unique_ptr<sim::TimingModel> make_schedule(int schedule) {
  return schedule == 0 ? sim::make_fixed_timing(kDelta)
                       : sim::make_uniform_timing(1, kDelta);
}

}  // namespace

TFR_BENCH_EXPERIMENT(E1, "Theorem 2.1", bench::Tier::kSmoke,
                     "consensus decision time without timing failures "
                     "(Theorem 2.1: <= 15 Delta)") {
  double worst_over_everything = 0;
  std::size_t worst_rounds = 0;

  for (const bool split : {false, true}) {
    Table table(std::string("inputs = ") + (split ? "split 0/1" : "all 1"));
    table.header({"n", "schedule", "decide time / Delta (mean, min..max)",
                  "rounds (max)"});
    for (const std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      for (const int schedule : {0, 1}) {
        Samples times;
        std::size_t rounds = 0;
        for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
          const auto out = core::run_consensus(
              make_inputs(n, split), kDelta, make_schedule(schedule), seed);
          if (!out.all_decided) {
            rec.expect(false, "all decided (n=" + std::to_string(n) + ")");
            continue;
          }
          times.add(static_cast<double>(out.last_decision));
          rounds = std::max(rounds, out.max_round + 1);
        }
        worst_over_everything =
            std::max(worst_over_everything, times.max() / kDelta);
        worst_rounds = std::max(worst_rounds, rounds);
        table.row({Table::fmt(static_cast<long long>(n)),
                   schedule == 0 ? "lockstep" : "jitter",
                   bench::summarize(times, kDelta),
                   Table::fmt(static_cast<long long>(rounds))});
      }
    }
    table.print(rec.out());
  }

  rec.metric("decide_time.worst", worst_over_everything, "delta");
  rec.metric("rounds.worst", static_cast<double>(worst_rounds));
  rec.expect(worst_over_everything <= 15.0,
             "worst decision time <= 15 Delta (measured " +
                 Table::fmt(worst_over_everything) + " Delta)");
  rec.expect(worst_rounds <= 2, "at most two rounds used without failures");
}
