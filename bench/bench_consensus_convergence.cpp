// E3 — Theorem 2.1, bullet 2: if timing failures stop at (the beginning
// of) round r, every process decides at the latest by the end of round
// r+1 — convergence is one round, no matter how long the failure burst
// lasted.
//
// Workload: n=4 split inputs; a failure window of growing length L
// stretches every access of HALF the processes to 7 Delta (stretching
// everyone uniformly would just slow the whole system down in lockstep —
// it is the relative skew between victims and healthy processes that
// poisons rounds); when the window closes we snapshot r = max round and
// let the run finish.  Series: rounds at stop, decision
// round slack (decision round − r), decision time after the burst.
// Expected shape: slack <= 1 for almost all runs and <= 2 always (the
// snapshot lands mid-round, which can bleed one extra round versus the
// theorem's anchoring — see tests/consensus_sim_test.cpp); post-burst
// decision time stays a small constant multiple of Delta, independent
// of L.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;

namespace {
constexpr sim::Duration kDelta = 100;
constexpr std::uint64_t kSeeds = 40;
}  // namespace

TFR_BENCH_EXPERIMENT(E3, "Theorem 2.1", bench::Tier::kSmoke,
                     "convergence after a failure burst "
                     "(Theorem 2.1: decide by round r+1)") {
  Table table;
  table.header({"burst length / Delta", "rounds at stop (mean)",
                "slack <= 1 (%)", "slack max",
                "post-burst decide time / Delta (mean, min..max)"});

  std::size_t worst_slack = 0;
  double within_one_overall = 0;
  std::size_t cells = 0;

  for (const sim::Duration burst : {0, 10, 30, 100, 300}) {
    Samples rounds_at_stop;
    Samples post_time;
    std::size_t within_one = 0;
    std::size_t total = 0;
    std::size_t slack_max = 0;

    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      auto injector = std::make_unique<sim::FailureInjector>(
          sim::make_uniform_timing(1, kDelta), kDelta);
      const sim::Time failure_end = burst * kDelta;
      if (burst > 0)
        injector->add_window({.begin = 0,
                              .end = failure_end,
                              .victims = {0, 1},
                              .stretched = 7 * kDelta});

      sim::Simulation s(std::move(injector), {.seed = seed});
      core::SimConsensus consensus(s.space(), kDelta);
      const std::vector<int> inputs{0, 1, 0, 1};
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        consensus.monitor().set_input(static_cast<sim::Pid>(i), inputs[i]);
        s.spawn([&consensus, input = inputs[i]](sim::Env env) {
          return consensus.participant(env, input);
        });
      }
      // Snapshot once every stretched access has completed.
      const sim::Time stop = failure_end + 7 * kDelta;
      s.run(stop);
      const std::size_t r = consensus.max_round();
      s.run();
      rounds_at_stop.add(static_cast<double>(r));
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const std::size_t dec =
            consensus.decision_round(static_cast<sim::Pid>(i));
        const std::size_t slack = dec > r ? dec - r : 0;
        slack_max = std::max(slack_max, slack);
        within_one += (slack <= 1);
        ++total;
      }
      post_time.add(static_cast<double>(
          std::max<sim::Time>(0, consensus.monitor().last_decision_time() -
                                     failure_end)));
    }

    worst_slack = std::max(worst_slack, slack_max);
    within_one_overall += 100.0 * static_cast<double>(within_one) /
                          static_cast<double>(total);
    ++cells;
    table.row({Table::fmt(static_cast<long long>(burst)),
               Table::fmt(rounds_at_stop.mean(), 1),
               Table::fmt(100.0 * static_cast<double>(within_one) /
                              static_cast<double>(total),
                          1),
               Table::fmt(static_cast<long long>(slack_max)),
               bench::summarize(post_time, kDelta)});
  }
  table.print(rec.out());

  rec.metric("slack.worst", static_cast<double>(worst_slack), "rounds");
  rec.metric("slack.within_one_pct",
             within_one_overall / static_cast<double>(cells), "%");
  rec.expect(worst_slack <= 2,
             "decision round never exceeds snapshot round + 2 "
             "(theorem bound + mid-round snapshot slack)");
  // Trace one representative burst run and report the derived metrics
  // (convergence after the last injected failure, in Delta units).
  {
    obs::TraceSink sink;
    auto injector = std::make_unique<sim::FailureInjector>(
        sim::make_uniform_timing(1, kDelta), kDelta);
    injector->add_window({.begin = 0,
                          .end = 30 * kDelta,
                          .victims = {0, 1},
                          .stretched = 7 * kDelta});
    injector->set_trace_sink(&sink);
    core::run_consensus({0, 1, 0, 1}, kDelta, std::move(injector), 1,
                        sim::kTimeNever, &sink);
    bench::trace_metrics(rec, "burst30", obs::compute_metrics(sink), kDelta);
  }

  rec.expect(within_one_overall / static_cast<double>(cells) >= 90.0,
             "decision round within snapshot round + 1 for >= 90% of "
             "processes");
}
