// E7 — §3 efficiency: in the absence of timing failures Algorithm 3 has
// O(Delta) time complexity (the paper's metric: the longest interval with
// someone in entry code while the CS is empty), independent of n, while
// purely asynchronous starvation-free algorithms pay Θ(n·Delta).
//
// Workload: n processes cycling through short critical sections under
// lockstep timing at Delta (the adversary's slowest legal schedule), n and
// Delta swept.  Series: time complexity / Delta, and the solo entry
// latency / Delta.  Expected shape: tfr rows flat in n (small constant);
// bakery rows grow ~linearly with n; everything scales linearly in Delta
// (the /Delta column is Delta-invariant).

#include <functional>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "tfr/mutex/mutex_sim.hpp"
#include "tfr/mutex/workload_sim.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;
using mutex::WorkloadConfig;

namespace {

using Factory =
    std::function<std::unique_ptr<mutex::SimMutex>(sim::RegisterSpace&)>;

Factory make_algorithm(const std::string& name, int n, sim::Duration delta) {
  if (name == "tfr(sf)") {
    return [n, delta](sim::RegisterSpace& sp) {
      return mutex::make_tfr_mutex_starvation_free(sp, n, delta);
    };
  }
  if (name == "fischer") {
    return [delta](sim::RegisterSpace& sp) {
      return std::make_unique<mutex::FischerMutex>(sp, delta);
    };
  }
  if (name == "bakery") {
    return [n](sim::RegisterSpace& sp) {
      return std::make_unique<mutex::BakeryMutex>(sp, n);
    };
  }
  return [n](sim::RegisterSpace& sp) {
    return std::make_unique<mutex::BlackWhiteBakeryMutex>(sp, n);
  };
}

double solo_entry_latency(const std::string& name, int n,
                          sim::Duration delta) {
  const auto result = mutex::run_mutex_workload(
      make_algorithm(name, n, delta),
      WorkloadConfig{.processes = 1, .sessions = 3, .cs_time = 1,
                     .ncs_time = 1},
      sim::make_fixed_timing(delta), 1, 1'000'000'000);
  return static_cast<double>(result.max_wait) / static_cast<double>(delta);
}

double contended_time_complexity(const std::string& name, int n,
                                 sim::Duration delta, std::uint64_t seed) {
  const auto result = mutex::run_mutex_workload(
      make_algorithm(name, n, delta),
      WorkloadConfig{.processes = n, .sessions = 6, .cs_time = delta,
                     .ncs_time = delta, .randomize_ncs = true},
      sim::make_fixed_timing(delta), seed, 1'000'000'000);
  return static_cast<double>(result.time_complexity) /
         static_cast<double>(delta);
}

}  // namespace

TFR_BENCH_EXPERIMENT(E7, "section 3 efficiency", bench::Tier::kSmoke,
                     "time complexity without failures: O(Delta) for "
                     "Algorithm 3 vs Θ(n·Delta) for asynchronous "
                     "baselines") {
  const char* names[] = {"tfr(sf)", "fischer", "bakery", "bw-bakery"};

  Table solo("solo entry latency (time units of Delta), Delta = 100");
  solo.header({"algorithm", "n=2", "n=8", "n=32", "n=128"});
  double tfr_n2 = 0, tfr_n128 = 0, bakery_n2 = 0, bakery_n128 = 0;
  for (const auto* name : names) {
    std::vector<std::string> row{name};
    for (const int n : {2, 8, 32, 128}) {
      const double latency = solo_entry_latency(name, n, 100);
      row.push_back(Table::fmt(latency, 1));
      if (std::string(name) == "tfr(sf)") {
        if (n == 2) tfr_n2 = latency;
        if (n == 128) tfr_n128 = latency;
      }
      if (std::string(name) == "bakery") {
        if (n == 2) bakery_n2 = latency;
        if (n == 128) bakery_n128 = latency;
      }
    }
    solo.row(std::move(row));
  }
  solo.print(rec.out());

  Table contended("contended time complexity / Delta (worst over seeds)");
  contended.header({"algorithm", "Delta", "n=2", "n=4", "n=8", "n=16"});
  double tfr_worst_any_n = 0;
  double bakery_n16_best_delta = 1e18;
  for (const auto* name : names) {
    for (const sim::Duration delta : {10, 100, 1000}) {
      std::vector<std::string> row{name, Table::fmt(static_cast<long long>(delta))};
      for (const int n : {2, 4, 8, 16}) {
        double worst = 0;
        for (std::uint64_t seed = 0; seed < 5; ++seed)
          worst = std::max(worst,
                           contended_time_complexity(name, n, delta, seed));
        row.push_back(Table::fmt(worst, 1));
        if (std::string(name) == "tfr(sf)")
          tfr_worst_any_n = std::max(tfr_worst_any_n, worst);
        if (std::string(name) == "bakery" && n == 16)
          bakery_n16_best_delta = std::min(bakery_n16_best_delta, worst);
      }
      contended.row(std::move(row));
    }
  }
  contended.print(rec.out());

  rec.metric("tfr.solo_latency.n2", tfr_n2, "delta");
  rec.metric("tfr.solo_latency.n128", tfr_n128, "delta");
  rec.metric("bakery.solo_latency.n2", bakery_n2, "delta");
  rec.metric("bakery.solo_latency.n128", bakery_n128, "delta");
  rec.metric("tfr.contended.worst", tfr_worst_any_n, "delta");
  rec.metric("bakery.contended.n16_best", bakery_n16_best_delta, "delta");
  rec.expect(tfr_n128 == tfr_n2, "Algorithm 3 solo latency independent of n");
  rec.expect(tfr_n2 <= 12.0,
             "Algorithm 3 solo latency a small multiple of Delta");
  rec.expect(bakery_n128 >= 10 * bakery_n2,
             "bakery solo latency grows ~linearly with n");
  rec.expect(tfr_worst_any_n <= 40.0,
             "Algorithm 3 contended time complexity stays O(Delta) "
             "(measured max " + Table::fmt(tfr_worst_any_n) + " Delta)");
  rec.expect(bakery_n16_best_delta > tfr_worst_any_n,
             "bakery at n=16 exceeds Algorithm 3's worst cell");
}
