// E2 — Theorem 2.1, bullet 4: in the absence of contention a process
// decides after taking exactly 7 of its own steps, with no delay
// statement, *regardless of timing failures*.
//
// Workload: one solo proposer under progressively worse timing (every
// access up to 100x the assumed Δ).  Series: steps, delays, decision time.
// Expected shape: steps == 7 and delays == 0 in every row; decision time
// scales with the actual step cost, not with Δ.  A second table shows the
// late-arrival fast path: a process joining after the decision needs a
// single step.

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;

namespace {
constexpr sim::Duration kDelta = 100;
}  // namespace

TFR_BENCH_EXPERIMENT(E2, "Theorem 2.1", bench::Tier::kSmoke,
                     "contention-free fast path: 7 steps, no delay, "
                     "regardless of timing failures (Theorem 2.1)") {
  Table table("solo proposer");
  table.header({"step cost / Delta", "steps", "delays", "decide time"});
  bool always_7 = true;
  bool never_delayed = true;
  for (const sim::Duration factor : {1, 2, 10, 100}) {
    const auto out = core::run_consensus({1}, kDelta,
                                         sim::make_fixed_timing(kDelta * factor));
    always_7 &= (out.steps[0] == 7);
    never_delayed &= (out.delays[0] == 0);
    table.row({Table::fmt(static_cast<long long>(factor)),
               Table::fmt(static_cast<unsigned long long>(out.steps[0])),
               Table::fmt(static_cast<unsigned long long>(out.delays[0])),
               Table::fmt(static_cast<long long>(out.last_decision))});
  }
  table.print(rec.out());

  rec.expect(always_7, "solo proposer always takes exactly 7 steps");
  rec.expect(never_delayed, "solo proposer never executes delay()");

  // Late arrival: one step to adopt an existing decision.
  Table late("late arrival after the decision");
  late.header({"arrival time / Delta", "steps by late process"});
  bool late_one_step = true;
  for (const sim::Time arrival : {20, 100, 1000}) {
    sim::Simulation s(sim::make_fixed_timing(kDelta));
    core::SimConsensus consensus(s.space(), kDelta);
    consensus.monitor().set_input(0, 1);
    consensus.monitor().set_input(1, 0);
    s.spawn([&consensus](sim::Env env) { return consensus.participant(env, 1); });
    s.spawn([&consensus](sim::Env env) { return consensus.participant(env, 0); },
            arrival * kDelta);
    s.run();
    const auto steps = s.stats(1).accesses();
    late_one_step &= (steps == 1);
    late.row({Table::fmt(static_cast<long long>(arrival)),
              Table::fmt(static_cast<unsigned long long>(steps))});
  }
  late.print(rec.out());
  rec.expect(late_one_step, "a process arriving after the decision "
                            "terminates after a single step");

  // Machine-readable metrics from a traced solo run (fast-path shape).
  obs::TraceSink sink;
  core::run_consensus({1}, kDelta, sim::make_fixed_timing(kDelta), 1,
                      sim::kTimeNever, &sink);
  bench::trace_metrics(rec, "solo", obs::compute_metrics(sink), kDelta);
}
