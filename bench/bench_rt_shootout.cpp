// E12 — contended-throughput shootout on real threads (§3.3: "determining
// the best value for optimistic(Δ) … on each individual machine"): the
// blocking tfr lock (Algorithm 3 on the futex-class substrate) vs the raw
// 4-byte AtomicMutex vs std::mutex vs a yield-spin TAS reference, at
// 2–64 threads × short/long critical sections.
//
// Per cell: acquisitions/s, p99 and max lock() latency, and the
// CPU-time/wall-time ratio — the core-burning detector.  A blocking lock
// holds the ratio near (or below) 1 regardless of thread count; the spin
// reference climbs toward min(threads, cores).  Correctness counters
// (mutual-exclusion violations) are exactly gated at zero in
// bench/baseline.json; throughput and latency series are recorded
// ungated (host-dependent).
//
// The oversubscription row pins threads = 4× hardware cores — the regime
// the paper's timing failures live in, and the one the old yield-spin
// wait loops made unmeasurable (every waiter pegged a core).

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "tfr/mutex/lock_adapters.hpp"
#include "tfr/mutex/mutex_rt.hpp"
#include "tfr/rt/atomic_mutex.hpp"

using namespace tfr;
using namespace tfr::rt;

namespace {

constexpr Nanos kDelta{500};  // optimistic(Δ) for the tfr fast path

std::unique_ptr<RtMutex> make_lock(const std::string& name, int n) {
  if (name == "tfr(sf)") return make_tfr_mutex_rt(n, kDelta);
  if (name == "atomic") return std::make_unique<AtomicMutexLock>();
  if (name == "std::mutex") return std::make_unique<StdMutexLock>();
  return std::make_unique<SpinYieldLock>();
}

struct Cell {
  RtWorkloadResult result;
  double acq_per_sec = 0;
};

Cell run_cell(const std::string& lock, int threads, Nanos cs, Nanos ncs,
              int sessions) {
  auto mutex = make_lock(lock, threads);
  Cell cell;
  cell.result = run_rt_mutex_workload(
      *mutex, {.threads = threads, .sessions = sessions, .cs_time = cs,
               .ncs_time = ncs});
  cell.acq_per_sec =
      cell.result.wall_seconds > 0
          ? static_cast<double>(cell.result.cs_entries) /
                cell.result.wall_seconds
          : 0;
  return cell;
}

}  // namespace

TFR_BENCH_EXPERIMENT(E12, "section 3.3 practicality", bench::Tier::kSmoke,
                     "contended lock shootout: blocking tfr vs "
                     "atomic_mutex vs std::mutex vs yield-spin, 2-64 "
                     "threads x short/long CS") {
  const std::string locks[] = {"tfr(sf)", "atomic", "std::mutex",
                               "spin-yield"};
  const int thread_counts[] = {2, 8, 64};
  struct CsClass {
    const char* name;
    Nanos cs;
    Nanos ncs;
    int base_sessions;  ///< scaled down as threads go up
  };
  // short: lock-handoff bound (sub-µs CS, spin-budget territory);
  // long: 300 µs CS — deep in the sleep_spin_for / parked-waiter regime.
  const CsClass classes[] = {
      {"short", Nanos{2'000}, Nanos{1'000}, 512},
      {"long", Nanos{300'000}, Nanos{100'000}, 96},
  };

  std::uint64_t total_violations = 0;

  for (const auto& cs_class : classes) {
    Table table(std::string("contended shootout, ") + cs_class.name +
                " CS (" + Table::fmt(cs_class.cs.count() / 1000.0, 1) +
                " us)");
    table.header({"lock", "threads", "acq/s", "p99 wait us", "max wait us",
                  "cpu/wall"});
    for (const std::string& lock : locks) {
      for (const int threads : thread_counts) {
        const int sessions =
            std::max(cs_class.base_sessions / threads, 2);
        const Cell cell =
            run_cell(lock, threads, cs_class.cs, cs_class.ncs, sessions);
        total_violations += cell.result.violations;
        table.row({lock, Table::fmt(threads),
                   Table::fmt(cell.acq_per_sec, 0),
                   Table::fmt(cell.result.p99_wait.count() / 1000.0, 1),
                   Table::fmt(cell.result.max_wait.count() / 1000.0, 1),
                   Table::fmt(cell.result.cpu_wall_ratio(), 2)});
        const std::string prefix = lock + ".t" + Table::fmt(threads) + "." +
                                   cs_class.name;
        rec.metric(prefix + ".acq_per_sec", cell.acq_per_sec, "1/s");
        rec.metric(prefix + ".p99_wait_us",
                   static_cast<double>(cell.result.p99_wait.count()) / 1e3,
                   "us");
      }
    }
    table.print(rec.out());
  }

  // Oversubscription detector: threads = 4x hardware cores, long-ish CS.
  // Blocking locks must hold cpu/wall under 1.5 on ANY host (waiters
  // parked, CS sleeping); the yield-spin reference keeps every waiter
  // runnable and pays ~min(threads, cores).
  const int cores = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  const int oversub_threads = 4 * cores;
  Table oversub("oversubscription detector, threads = 4 x " +
                Table::fmt(cores) + " cores");
  oversub.header({"lock", "acq/s", "p99 wait us", "cpu/wall"});
  double tfr_ratio = 0, atomic_ratio = 0, std_ratio = 0, spin_ratio = 0;
  for (const std::string& lock : locks) {
    const Cell cell = run_cell(lock, oversub_threads, Nanos{200'000},
                               Nanos{200'000}, 12);
    total_violations += cell.result.violations;
    const double ratio = cell.result.cpu_wall_ratio();
    if (lock == "tfr(sf)") tfr_ratio = ratio;
    if (lock == "atomic") atomic_ratio = ratio;
    if (lock == "std::mutex") std_ratio = ratio;
    if (lock == "spin-yield") spin_ratio = ratio;
    oversub.row({lock, Table::fmt(cell.acq_per_sec, 0),
                 Table::fmt(cell.result.p99_wait.count() / 1000.0, 1),
                 Table::fmt(ratio, 2)});
    rec.metric("oversub." + lock + ".cpu_wall", ratio);
  }
  oversub.print(rec.out());

  rec.metric("me_violations", static_cast<double>(total_violations));
  rec.expect(sizeof(AtomicMutex) == 4, "atomic_mutex storage is 4 bytes");
  rec.expect(total_violations == 0,
             "zero mutual-exclusion violations across every cell");
  rec.expect(tfr_ratio < 1.5,
             "oversubscribed tfr(sf) blocks: cpu/wall " +
                 Table::fmt(tfr_ratio, 2) + " < 1.5");
  rec.expect(atomic_ratio < 1.5,
             "oversubscribed atomic_mutex blocks: cpu/wall " +
                 Table::fmt(atomic_ratio, 2) + " < 1.5");
  rec.expect(std_ratio < 1.5,
             "oversubscribed std::mutex blocks: cpu/wall " +
                 Table::fmt(std_ratio, 2) + " < 1.5");
  rec.expect(spin_ratio > tfr_ratio + 0.3,
             "yield-spin reference burns measurably more CPU than the "
             "blocking tfr lock (" + Table::fmt(spin_ratio, 2) + " vs " +
                 Table::fmt(tfr_ratio, 2) + ")");
}
