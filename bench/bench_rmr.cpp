// E15 — §4 extension: remote-memory-reference (RMR) accounting, the
// metric behind the paper's call for "efficient time-resilient …
// local-spinning algorithms" (and behind [25], which counts only remote
// references and delays).  The simulator's cache-coherent model counts a
// read as remote iff the reader holds no valid cached copy (spinning on
// an unchanged register is local); every write is remote and invalidates
// other copies.
//
// Series: RMR per critical-section entry for the mutex family (solo and
// contended), and RMR per decided consensus.  Expected shape: solo, the
// single-register algorithms (Fischer, Algorithm 3) cost O(1) RMR while
// the bakery family pays Θ(n) for its doorway scans even alone.  Under
// contention, however, EVERY algorithm here pays Θ(n) RMR per entry —
// each release invalidates all n-1 spinners' cached copies of the one
// gate register.  That measured Θ(n) is precisely the gap the paper's §4
// flags as an open direction ("efficient time-resilient … local-spinning
// algorithms", cf. [25]): time-resilience with O(1) RMR is not obtained
// by any algorithm in the paper, and this table shows it.  Consensus RMR
// is a small constant (7) contention-free.

#include <functional>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/mutex/mutex_sim.hpp"
#include "tfr/mutex/workload_sim.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;
using mutex::WorkloadConfig;

namespace {

constexpr sim::Duration kDelta = 100;

double rmr_per_entry(const std::string& name, int n, std::uint64_t seed) {
  sim::Simulation s(sim::make_uniform_timing(1, kDelta), {.seed = seed});
  std::unique_ptr<mutex::SimMutex> algorithm;
  if (name == "tfr(sf)") {
    algorithm = mutex::make_tfr_mutex_starvation_free(s.space(), n, kDelta);
  } else if (name == "fischer") {
    algorithm = std::make_unique<mutex::FischerMutex>(s.space(), kDelta);
  } else if (name == "bakery") {
    algorithm = std::make_unique<mutex::BakeryMutex>(s.space(), n);
  } else {
    algorithm = std::make_unique<mutex::BlackWhiteBakeryMutex>(s.space(), n);
  }
  sim::MutexMonitor monitor;
  const WorkloadConfig config{.processes = n,
                              .sessions = 8,
                              .cs_time = 20,
                              .ncs_time = 40,
                              .randomize_ncs = true};
  for (int i = 0; i < n; ++i) {
    s.spawn([&, i](sim::Env env) {
      return mutex::mutex_sessions(env, *algorithm, monitor, i, config);
    });
  }
  s.run(1'000'000'000);
  std::uint64_t rmr = 0;
  for (int i = 0; i < n; ++i) rmr += s.stats(i).rmr;
  return static_cast<double>(rmr) /
         static_cast<double>(monitor.cs_entries());
}

double solo_rmr_per_entry(const std::string& name, int n) {
  sim::Simulation s(sim::make_fixed_timing(kDelta));
  std::unique_ptr<mutex::SimMutex> algorithm;
  if (name == "tfr(sf)") {
    algorithm = mutex::make_tfr_mutex_starvation_free(s.space(), n, kDelta);
  } else if (name == "fischer") {
    algorithm = std::make_unique<mutex::FischerMutex>(s.space(), kDelta);
  } else if (name == "bakery") {
    algorithm = std::make_unique<mutex::BakeryMutex>(s.space(), n);
  } else {
    algorithm = std::make_unique<mutex::BlackWhiteBakeryMutex>(s.space(), n);
  }
  sim::MutexMonitor monitor;
  const WorkloadConfig config{
      .processes = 1, .sessions = 4, .cs_time = 10, .ncs_time = 10};
  s.spawn([&](sim::Env env) {
    return mutex::mutex_sessions(env, *algorithm, monitor, 0, config);
  });
  s.run(1'000'000'000);
  return static_cast<double>(s.stats(0).rmr) /
         static_cast<double>(monitor.cs_entries());
}

}  // namespace

TFR_BENCH_EXPERIMENT(E15, "section 4 (local spinning)", bench::Tier::kSmoke,
                     "remote memory references per CS entry "
                     "(cache-coherent model; §4 local-spinning direction)") {
  Table solo_table("solo process (algorithm sized for n)");
  solo_table.header({"algorithm", "n=2", "n=16", "n=128"});
  double tfr_solo_2 = 0, tfr_solo_128 = 0, bakery_solo_2 = 0,
         bakery_solo_128 = 0;
  for (const auto* name : {"fischer", "tfr(sf)", "bakery", "bw-bakery"}) {
    std::vector<std::string> row{name};
    for (const int n : {2, 16, 128}) {
      const double rmr = solo_rmr_per_entry(name, n);
      row.push_back(Table::fmt(rmr, 1));
      if (std::string(name) == "tfr(sf)") {
        if (n == 2) tfr_solo_2 = rmr;
        if (n == 128) tfr_solo_128 = rmr;
      }
      if (std::string(name) == "bakery") {
        if (n == 2) bakery_solo_2 = rmr;
        if (n == 128) bakery_solo_128 = rmr;
      }
    }
    solo_table.row(std::move(row));
  }
  solo_table.print(rec.out());

  Table table("under contention (all n processes cycling)");
  table.header({"algorithm", "n=2", "n=4", "n=8", "n=16"});
  double tfr_n16 = 0, tfr_n2 = 0, bakery_n16 = 0, bakery_n2 = 0;
  for (const auto* name : {"fischer", "tfr(sf)", "bakery", "bw-bakery"}) {
    std::vector<std::string> row{name};
    for (const int n : {2, 4, 8, 16}) {
      double total = 0;
      const int seeds = 5;
      for (std::uint64_t seed = 0; seed < seeds; ++seed)
        total += rmr_per_entry(name, n, seed);
      const double mean = total / seeds;
      row.push_back(Table::fmt(mean, 1));
      if (std::string(name) == "tfr(sf)") {
        if (n == 2) tfr_n2 = mean;
        if (n == 16) tfr_n16 = mean;
      }
      if (std::string(name) == "bakery") {
        if (n == 2) bakery_n2 = mean;
        if (n == 16) bakery_n16 = mean;
      }
    }
    table.row(std::move(row));
  }
  table.print(rec.out());

  // Consensus RMR: contention-free and contended.
  const auto solo = core::run_consensus({1}, kDelta,
                                        sim::make_fixed_timing(kDelta));
  sim::Simulation s(sim::make_uniform_timing(1, kDelta), {.seed = 3});
  core::SimConsensus consensus(s.space(), kDelta);
  for (int i = 0; i < 4; ++i) {
    consensus.monitor().set_input(i, i % 2);
    s.spawn([&consensus, input = i % 2](sim::Env env) {
      return consensus.participant(env, input);
    });
  }
  s.run();
  std::uint64_t contended_rmr = 0;
  for (int i = 0; i < 4; ++i) contended_rmr += s.stats(i).rmr;

  Table consensus_table("consensus RMR");
  consensus_table.header({"scenario", "RMR"});
  consensus_table.row(
      {"solo (7 steps)", Table::fmt(static_cast<unsigned long long>(
                             solo.steps[0]))});  // all 7 remote
  consensus_table.row({"4 procs split inputs, total",
                       Table::fmt(static_cast<unsigned long long>(
                           contended_rmr))});
  consensus_table.print(rec.out());

  rec.expect(tfr_solo_128 <= tfr_solo_2 + 1.0,
             "solo Algorithm 3 RMR is O(1), independent of n");
  rec.expect(bakery_solo_128 >= 5 * bakery_solo_2,
             "solo bakery RMR is Θ(n) (doorway scans; first-touch "
             "misses amortized over the sessions)");
  rec.expect(tfr_n16 >= tfr_n2 + 10.0 && bakery_n16 >= bakery_n2 + 10.0,
             "under contention every algorithm here pays Θ(n) RMR per "
             "entry — the §4 local-spinning open problem, measured");
  rec.expect(contended_rmr <= 200,
             "contended consensus total RMR stays small");

  rec.metric("tfr.solo.rmr_per_entry.n2", tfr_solo_2);
  rec.metric("tfr.solo.rmr_per_entry.n128", tfr_solo_128);
  rec.metric("bakery.solo.rmr_per_entry.n2", bakery_solo_2);
  rec.metric("bakery.solo.rmr_per_entry.n128", bakery_solo_128);
  rec.metric("consensus.solo.rmr", static_cast<double>(solo.steps[0]));
  rec.metric("consensus.contended.rmr", static_cast<double>(contended_rmr));
}
