// E12b — real-thread microbenchmarks (google-benchmark) for the mutex
// family on std::atomic registers: uncontended lock/unlock latency per
// algorithm (the cost a downstream user actually pays), the effect of the
// assumed optimistic(Delta) on Algorithm 3's fast path, and contended
// throughput.  The registered E12 shootout (bench_rt_shootout.cpp) covers
// contended throughput / p99 wait / cpu-wall at scale; this binary keeps
// the per-operation latency numbers, now including the shootout's
// atomic/std::mutex/spin-yield adapters for apples-to-apples latency.

#include <benchmark/benchmark.h>

#include <memory>
#include <thread>

#include "tfr/mutex/lock_adapters.hpp"
#include "tfr/mutex/mutex_rt.hpp"

namespace {

using namespace tfr::rt;

std::unique_ptr<RtMutex> make_mutex(int algo, int n, Nanos delta) {
  switch (algo) {
    case 0: return std::make_unique<FischerRt>(delta);
    case 1: return std::make_unique<LamportFastRt>(n);
    case 2: return std::make_unique<BakeryRt>(n);
    case 3: return std::make_unique<BlackWhiteBakeryRt>(n);
    case 4:
      return std::make_unique<StarvationFreeRt>(
          n, std::make_unique<LamportFastRt>(n));
    case 5: return make_tfr_mutex_rt(n, delta);
    case 6: return std::make_unique<AtomicMutexLock>();
    case 7: return std::make_unique<StdMutexLock>();
    default: return std::make_unique<SpinYieldLock>();
  }
}

const char* algo_name(int algo) {
  switch (algo) {
    case 0: return "fischer";
    case 1: return "lamport-fast";
    case 2: return "bakery";
    case 3: return "bw-bakery";
    case 4: return "starvation-free";
    case 5: return "tfr(sf)";
    case 6: return "atomic";
    case 7: return "std::mutex";
    default: return "spin-yield";
  }
}

void BM_UncontendedLockUnlock(benchmark::State& state) {
  const int algo = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  auto mutex = make_mutex(algo, n, Nanos{500});
  for (auto _ : state) {
    mutex->lock(0);
    mutex->unlock(0);
  }
  state.SetLabel(std::string(algo_name(algo)) + ", n=" + std::to_string(n));
}
BENCHMARK(BM_UncontendedLockUnlock)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7, 8}, {4, 64}});

void BM_TfrFastPathVsDelta(benchmark::State& state) {
  // Algorithm 3 pays one delay(delta) per uncontended acquisition: the
  // knob optimistic(Delta) directly sets the fast-path latency.
  const Nanos delta{state.range(0)};
  auto mutex = make_tfr_mutex_rt(4, delta);
  for (auto _ : state) {
    mutex->lock(0);
    mutex->unlock(0);
  }
  state.SetLabel("delta=" + std::to_string(delta.count()) + "ns");
}
BENCHMARK(BM_TfrFastPathVsDelta)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ContendedThroughput(benchmark::State& state) {
  const int algo = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto mutex = make_mutex(algo, threads, Nanos{500});
    const auto result = run_rt_mutex_workload(
        *mutex, {.threads = threads,
                 .sessions = 50,
                 .cs_time = Nanos{200},
                 .ncs_time = Nanos{200}});
    if (result.violations != 0) state.SkipWithError("ME violated!");
  }
  state.SetLabel(std::string(algo_name(algo)) + ", " +
                 std::to_string(threads) + " threads x 50 sessions");
}
BENCHMARK(BM_ContendedThroughput)->ArgsProduct({{2, 3, 5, 6, 7}, {2, 4}});

}  // namespace

BENCHMARK_MAIN();
