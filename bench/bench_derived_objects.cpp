// E11 — §1.4: consensus as a universal building block.  Cost of the
// derived wait-free objects (leader election, test-and-set, n-renaming,
// universal-construction operations) built from Algorithm 1, with and
// without timing failures.
//
// Series: per-operation shared-memory steps and completion time (Delta
// units), plus registers allocated, as n grows.  Expected shape: costs
// scale with the bit-width of the agreement (elections/TAS ~constant in
// n), renaming ~n slots worst case, and timing failures slow things down
// without ever breaking agreement/uniqueness (safety columns implicit:
// the monitors throw on violation, so completing the table is the check).

#include <algorithm>
#include <iostream>
#include <memory>
#include <set>
#include <vector>

#include "bench_util.hpp"
#include "tfr/common/contracts.hpp"
#include "tfr/derived/election_sim.hpp"
#include "tfr/derived/long_lived_tas_sim.hpp"
#include "tfr/derived/renaming_sim.hpp"
#include "tfr/derived/set_consensus_sim.hpp"
#include "tfr/derived/test_and_set_sim.hpp"
#include "tfr/derived/universal_sim.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;

namespace {

constexpr sim::Duration kDelta = 100;
constexpr std::uint64_t kSeeds = 8;

std::unique_ptr<sim::TimingModel> timing(bool failures) {
  if (!failures) return sim::make_uniform_timing(1, kDelta);
  auto injector = std::make_unique<sim::FailureInjector>(
      sim::make_uniform_timing(1, kDelta), kDelta);
  injector->set_random_failures(0.1, 8 * kDelta);
  return injector;
}

struct Measured {
  Samples steps;   ///< per process
  Samples time;    ///< completion time
  std::uint64_t registers = 0;
};

sim::Process elect_body(sim::Env env, derived::SimElection& e, int* out) {
  *out = co_await e.elect(env);
}

sim::Process tas_body(sim::Env env, derived::SimTestAndSet& t, int* out) {
  *out = co_await t.test_and_set(env);
}

sim::Process rename_body(sim::Env env, derived::SimRenaming& r, int* out) {
  *out = co_await r.acquire(env);
}

sim::Process universal_body(sim::Env env, derived::SimUniversal& u, int ops) {
  for (int k = 0; k < ops; ++k)
    co_await u.invoke(env, derived::CounterReplica::kAdd, 1);
}

sim::Process setcons_body(sim::Env env, derived::SimSetConsensus& sc,
                          std::int64_t input, std::int64_t* out) {
  *out = co_await sc.propose(env, input);
}

sim::Process lltas_body(sim::Env env, derived::SimLongLivedTestAndSet& tas,
                        int sessions) {
  for (int s = 0; s < sessions; ++s) {
    for (;;) {
      const int got = co_await tas.test_and_set(env);
      if (got == 0) break;
      co_await env.delay(10);
    }
    co_await tas.reset(env);
  }
}

Measured measure(const std::string& object, int n, bool failures) {
  Measured m;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    sim::Simulation s(timing(failures), {.seed = seed});
    std::vector<int> out(static_cast<std::size_t>(n), -1);

    std::unique_ptr<derived::SimElection> election;
    std::unique_ptr<derived::SimTestAndSet> tas;
    std::unique_ptr<derived::SimRenaming> renaming;
    std::unique_ptr<derived::SimUniversal> universal;
    std::unique_ptr<derived::SimSetConsensus> setcons;
    std::unique_ptr<derived::SimLongLivedTestAndSet> lltas;
    std::vector<std::int64_t> out64(static_cast<std::size_t>(n), -1);

    if (object == "election") {
      election = std::make_unique<derived::SimElection>(s.space(), kDelta);
      for (int i = 0; i < n; ++i)
        s.spawn([&election, slot = &out[static_cast<std::size_t>(i)]](
                    sim::Env env) { return elect_body(env, *election, slot); });
    } else if (object == "test-and-set") {
      tas = std::make_unique<derived::SimTestAndSet>(s.space(), kDelta);
      for (int i = 0; i < n; ++i)
        s.spawn([&tas, slot = &out[static_cast<std::size_t>(i)]](
                    sim::Env env) { return tas_body(env, *tas, slot); });
    } else if (object == "renaming") {
      renaming = std::make_unique<derived::SimRenaming>(s.space(), kDelta, n);
      for (int i = 0; i < n; ++i)
        s.spawn([&renaming, slot = &out[static_cast<std::size_t>(i)]](
                    sim::Env env) { return rename_body(env, *renaming, slot); });
    } else if (object == "set-consensus(k=2)") {
      setcons =
          std::make_unique<derived::SimSetConsensus>(s.space(), kDelta, 2);
      for (int i = 0; i < n; ++i)
        s.spawn([&setcons, input = std::int64_t{100 + i},
                 slot = &out64[static_cast<std::size_t>(i)]](sim::Env env) {
          return setcons_body(env, *setcons, input, slot);
        });
    } else if (object == "long-lived-tas") {
      lltas = std::make_unique<derived::SimLongLivedTestAndSet>(s.space(),
                                                                kDelta);
      for (int i = 0; i < n; ++i)
        s.spawn([&lltas](sim::Env env) { return lltas_body(env, *lltas, 2); });
    } else {
      universal = std::make_unique<derived::SimUniversal>(
          s.space(), kDelta, n,
          [] { return std::make_unique<derived::CounterReplica>(); });
      for (int i = 0; i < n; ++i)
        s.spawn([&universal](sim::Env env) {
          return universal_body(env, *universal, 2);
        });
    }

    s.run(failures ? 5'000'000'000 : 500'000'000);

    // Safety audits per object.
    if (object == "election" || object == "test-and-set" ||
        object == "renaming") {
      std::set<int> values(out.begin(), out.end());
      if (object == "election") TFR_ENSURE(values.size() == 1);
      if (object == "test-and-set")
        TFR_ENSURE(std::count(out.begin(), out.end(), 0) == 1);
      if (object == "renaming")
        TFR_ENSURE(values.size() == static_cast<std::size_t>(n));
    }
    if (object == "set-consensus(k=2)") {
      std::set<std::int64_t> values(out64.begin(), out64.end());
      TFR_ENSURE(values.size() <= 2);
    }
    if (object == "long-lived-tas")
      TFR_ENSURE(lltas->generations() >= static_cast<std::size_t>(2 * n));

    for (int i = 0; i < n; ++i)
      m.steps.add(static_cast<double>(s.stats(i).accesses()));
    m.time.add(static_cast<double>(s.now()));
    m.registers = std::max(m.registers, s.space().allocated());
  }
  return m;
}

}  // namespace

TFR_BENCH_EXPERIMENT(E11, "section 1.4", bench::Tier::kSmoke,
                     "derived wait-free objects built from consensus "
                     "(§1.4)") {
  for (const bool failures : {false, true}) {
    Table table(failures ? "with 10% timing failures" : "without failures");
    table.header({"object", "n", "steps / process (mean)",
                  "completion / Delta (mean)", "registers"});
    for (const auto* object :
         {"election", "test-and-set", "set-consensus(k=2)", "renaming",
          "long-lived-tas", "universal-counter"}) {
      for (const int n : {2, 4, 8}) {
        const auto m = measure(object, n, failures);
        table.row({object, Table::fmt(static_cast<long long>(n)),
                   Table::fmt(m.steps.mean(), 0),
                   Table::fmt(m.time.mean() / kDelta, 1),
                   Table::fmt(static_cast<unsigned long long>(m.registers))});
      }
    }
    table.print(rec.out());
  }

  // Shape checks: election cost ~independent of n; renaming grows with n.
  const auto e2 = measure("election", 2, false);
  const auto e8 = measure("election", 8, false);
  const auto r2 = measure("renaming", 2, false);
  const auto r8 = measure("renaming", 8, false);
  rec.metric("election.steps.n2", e2.steps.mean());
  rec.metric("election.steps.n8", e8.steps.mean());
  rec.metric("renaming.steps.n2", r2.steps.mean());
  rec.metric("renaming.steps.n8", r8.steps.mean());
  rec.expect(e8.steps.mean() < 3 * e2.steps.mean(),
             "election cost roughly independent of n "
             "(bit-width bound, not participant bound)");
  rec.expect(r8.steps.mean() > 2 * r2.steps.mean(),
             "renaming cost grows with n (up to n slots contested)");
  rec.expect(true, "all safety audits passed (monitors/ENSUREs held)");
}
