// E13 — design ablation: why Algorithm 1 is written the way it is.
//
// Two plausible-looking simplifications of Algorithm 1, measured against
// the faithful version under identical schedules:
//   (a) y-first: publish/read the round proposal y[r] before raising the
//       flag x[r, v] (lines 2 and 3 swapped).  The flag-first order is the
//       linchpin of the agreement argument — once some process decides v
//       in round r, any v̄-process must raise its flag (visible to the
//       decider) before reading y[r], hence reads y[r] = v.  Swapped, a
//       straggler's late y-write can poison the next round.
//   (b) no-delay: drop line 5's delay(Δ).  Safety is untouched, but the
//       delay is what lets every in-flight y-write land before preferences
//       are re-read; without it rounds keep splitting even on legal
//       schedules and the 15·Δ bound evaporates.
//
// Expected shape: faithful — zero agreement violations, rounds <= 2
// without failures; y-first — agreement violations at a substantial rate
// under timing failures (and zero only when timing holds); no-delay —
// zero violations but a round-count tail even without failures.

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "tfr/core/consensus_ablation_sim.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;
using core::AblationVariant;

namespace {
constexpr sim::Duration kDelta = 100;
constexpr std::uint64_t kSeeds = 200;

struct Row {
  std::uint64_t violating_runs = 0;
  std::uint64_t undecided_runs = 0;
  std::size_t worst_rounds = 0;
};

Row sweep(AblationVariant variant, double failure_p) {
  Row row;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    std::unique_ptr<sim::TimingModel> timing =
        sim::make_uniform_timing(1, kDelta);
    if (failure_p > 0) {
      auto injector = std::make_unique<sim::FailureInjector>(
          std::move(timing), kDelta);
      injector->set_random_failures(failure_p, 10 * kDelta);
      timing = std::move(injector);
    }
    const auto out = core::run_ablation(variant, {0, 1, 0, 1}, kDelta,
                                        std::move(timing), seed, 10'000'000);
    row.violating_runs += (out.agreement_violations > 0);
    row.undecided_runs += !out.all_decided;
    row.worst_rounds = std::max(row.worst_rounds, out.max_round + 1);
  }
  return row;
}

const char* variant_name(AblationVariant v) {
  switch (v) {
    case AblationVariant::kFaithful: return "faithful";
    case AblationVariant::kYFirst: return "y-first (lines 2/3 swapped)";
    default: return "no-delay (line 5 removed)";
  }
}

}  // namespace

TFR_BENCH_EXPERIMENT(E13, "Algorithm 1 design", bench::Tier::kSmoke,
                     "ablating Algorithm 1: flag-first ordering and "
                     "delay(Δ) are load-bearing") {
  Table table;
  table.header({"variant", "failure prob", "runs violating agreement",
                "undecided runs", "worst rounds"});

  Row faithful_clean, faithful_faulty, yfirst_clean, yfirst_faulty,
      nodelay_clean, nodelay_faulty;

  for (const auto variant :
       {AblationVariant::kFaithful, AblationVariant::kYFirst,
        AblationVariant::kNoDelay}) {
    for (const double p : {0.0, 0.15}) {
      const Row row = sweep(variant, p);
      if (variant == AblationVariant::kFaithful)
        (p == 0 ? faithful_clean : faithful_faulty) = row;
      if (variant == AblationVariant::kYFirst)
        (p == 0 ? yfirst_clean : yfirst_faulty) = row;
      if (variant == AblationVariant::kNoDelay)
        (p == 0 ? nodelay_clean : nodelay_faulty) = row;
      table.row({variant_name(variant), Table::fmt(p, 2),
                 Table::fmt(static_cast<unsigned long long>(
                     row.violating_runs)),
                 Table::fmt(static_cast<unsigned long long>(
                     row.undecided_runs)),
                 Table::fmt(static_cast<long long>(row.worst_rounds))});
    }
  }
  table.print(rec.out());

  rec.metric("yfirst.violating_runs.faulty",
             static_cast<double>(yfirst_faulty.violating_runs));
  rec.metric("faithful.worst_rounds.clean",
             static_cast<double>(faithful_clean.worst_rounds));
  rec.metric("nodelay.worst_rounds.clean",
             static_cast<double>(nodelay_clean.worst_rounds));
  rec.expect(faithful_clean.violating_runs == 0 &&
                 faithful_faulty.violating_runs == 0,
             "faithful Algorithm 1 never violates agreement");
  rec.expect(faithful_clean.worst_rounds <= 2,
             "faithful Algorithm 1 uses <= 2 rounds without failures");
  rec.expect(yfirst_faulty.violating_runs > 0,
             "y-first variant loses agreement under timing failures "
             "(the flag-first order is load-bearing)");
  rec.expect(nodelay_clean.violating_runs == 0 &&
                 nodelay_faulty.violating_runs == 0,
             "no-delay variant stays safe (delay is liveness-only)");
  rec.expect(nodelay_clean.worst_rounds > 2,
             "no-delay variant exceeds two rounds even without "
             "failures (the 15 Delta bound is gone)");
}
