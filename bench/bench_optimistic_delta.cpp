// E10 — §1.2/§3.3 (practicality): running with optimistic(Delta) far
// below the true worst-case bound is safe by construction and much faster
// in the common case; and the paper's suggested TCP-style estimator
// (slow start, grow on failure, shrink on stable progress) finds a good
// setting automatically.
//
// Environment model: steps are usually fast (uniform 1..20) but a small
// fraction (2%) spike to 50x (preemption/page-fault stand-ins) — i.e. the
// pessimistic bound is Delta_true = 1000 while optimistic behaviour is
// ~20.  Two sweeps:
//   (a) consensus decision time and mutex CS throughput as a function of
//       the delta the algorithm assumes (fractions of Delta_true);
//   (b) a trace of the adaptive estimator across repeated consensus
//       instances (grow on retried rounds, shrink on clean instances).
// Expected shape: (a) small assumed deltas dominate the pessimistic
// setting by a wide margin while safety holds everywhere (violations
// column identically 0); (b) the estimator settles far below Delta_true.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "tfr/adapt/controller.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/mutex/mutex_sim.hpp"
#include "tfr/mutex/workload_sim.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;
using mutex::WorkloadConfig;

namespace {

constexpr sim::Duration kTrueDelta = 1000;  // pessimistic bound
constexpr sim::Duration kCommonCost = 20;   // typical step cost
constexpr std::uint64_t kSeeds = 15;

std::unique_ptr<sim::TimingModel> spiky_timing() {
  auto injector = std::make_unique<sim::FailureInjector>(
      sim::make_uniform_timing(1, kCommonCost), kCommonCost);
  // 2% of steps spike to up to 50x the common cost — these are timing
  // failures w.r.t. small assumed deltas but legal w.r.t. kTrueDelta.
  injector->set_random_failures(0.02, kTrueDelta);
  return injector;
}

}  // namespace

TFR_BENCH_EXPERIMENT(E10, "section 1.2/3.3", bench::Tier::kSmoke,
                     "optimistic(Delta): safety is free, speed is tunable "
                     "(and the AIMD estimator tunes it)") {
  Table sweep("assumed delta sweep (true pessimistic bound = 1000, "
              "typical step = 1..20, 2% spikes)");
  sweep.header({"assumed delta", "consensus decide time (mean)",
                "mutex CS entries in 200k ticks", "ME violations"});

  double best_small_delta_time = 1e18;
  double pessimistic_time = 0;
  std::uint64_t best_small_delta_entries = 0;
  std::uint64_t pessimistic_entries = 0;
  std::uint64_t total_violations = 0;

  for (const sim::Duration assumed : {10, 20, 50, 200, 1000}) {
    Samples decide_times;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      const auto out = core::run_consensus({0, 1, 0, 1}, assumed,
                                           spiky_timing(), seed, 50'000'000);
      if (out.all_decided)
        decide_times.add(static_cast<double>(out.last_decision));
    }
    std::uint64_t entries = 0;
    std::uint64_t violations = 0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const auto result = mutex::run_mutex_workload(
          [assumed](sim::RegisterSpace& sp) {
            return mutex::make_tfr_mutex_starvation_free(sp, 4, assumed);
          },
          WorkloadConfig{.processes = 4,
                         .sessions = 0,
                         .cs_time = 20,
                         .ncs_time = 20,
                         .tolerate_violations = true},
          spiky_timing(), seed, 200'000);
      entries += result.cs_entries;
      violations += result.violations;
    }
    total_violations += violations;
    if (assumed <= 50)
      best_small_delta_time = std::min(best_small_delta_time,
                                       decide_times.mean());
    if (assumed <= 50)
      best_small_delta_entries = std::max(best_small_delta_entries, entries);
    if (assumed == 1000) {
      pessimistic_time = decide_times.mean();
      pessimistic_entries = entries;
    }
    sweep.row({Table::fmt(static_cast<long long>(assumed)),
               Table::fmt(decide_times.mean(), 1),
               Table::fmt(static_cast<unsigned long long>(entries)),
               Table::fmt(static_cast<unsigned long long>(violations))});
  }
  sweep.print(rec.out());

  rec.metric("violations.total", static_cast<double>(total_violations));
  rec.metric("optimistic.decide_time.best_small_delta", best_small_delta_time);
  rec.metric("pessimistic.decide_time", pessimistic_time);
  rec.metric("optimistic.cs_entries.best_small_delta",
             static_cast<double>(best_small_delta_entries));
  rec.metric("pessimistic.cs_entries",
             static_cast<double>(pessimistic_entries));
  rec.expect(total_violations == 0,
             "safety never depends on the assumed delta "
             "(0 violations across the sweep)");
  rec.expect(best_small_delta_time * 2 < pessimistic_time,
             "optimistic delta at least halves consensus decision time "
             "vs the pessimistic bound");
  rec.expect(best_small_delta_entries > 2 * pessimistic_entries,
             "optimistic delta more than doubles mutex throughput");

  // (b) the adaptive estimator across repeated consensus instances.
  Table trace("AIMD estimator trace (one consensus instance per step)");
  trace.header({"instance", "estimate before", "retried rounds",
                "estimate after"});
  adapt::Aimd estimator({.initial = 1,
                         .floor = 1,
                         .ceiling = kTrueDelta,
                         .grow_factor = 2.0,
                         .decay_step = 1,
                         .clean_threshold = 4});
  sim::Duration final_estimate = estimator.current();
  for (int instance = 0; instance < 40; ++instance) {
    const sim::Duration before = estimator.current();
    const auto out = core::run_consensus(
        {0, 1, 0, 1}, before, spiky_timing(),
        static_cast<std::uint64_t>(instance) + 1000, 50'000'000);
    // A clean instance finishes within two rounds; every extra round is a
    // retry signal (a suspected timing failure w.r.t. the estimate).
    const auto retried = out.max_round > 1 ? out.max_round - 1 : 0;
    if (retried > 0) {
      for (std::size_t i = 0; i < retried; ++i) estimator.on_failure();
    } else {
      estimator.on_clean();
    }
    if (instance < 12 || instance % 8 == 0) {
      trace.row({Table::fmt(instance),
                 Table::fmt(static_cast<long long>(before)),
                 Table::fmt(static_cast<unsigned long long>(retried)),
                 Table::fmt(static_cast<long long>(estimator.current()))});
    }
    final_estimate = estimator.current();
  }
  trace.print(rec.out());

  // Note: in this environment even a tiny delay usually suffices (a
  // retried round is cheap), so the estimator legitimately settles at the
  // bottom of its range — the key point is that it never needs to climb
  // anywhere near the pessimistic bound.
  rec.metric("estimator.final_estimate",
             static_cast<double>(final_estimate));
  rec.expect(final_estimate <= 200,
             "estimator settles at or below the common-case cost, far "
             "below the pessimistic bound (final = " +
                 Table::fmt(static_cast<long long>(final_estimate)) + ")");
}
