// E14 — §4 extension: transient MEMORY failures on top of timing
// failures.  The paper lists "both (transient) memory failures and timing
// failures" as an open research direction; this experiment charts the
// boundary empirically for Algorithm 1 by injecting single-register
// corruptions mid-run and observing which safety/liveness properties
// survive.
//
// Corruption classes (one random corruption per run, injected between
// events while the protocol is in flight, plus 10% timing failures):
//   flag-set      x[r, v] := 1 spuriously   — predicted TOLERATED for
//                 safety (a phantom conflict only forces an extra round);
//   decide-reset  decide := ⊥               — predicted TOLERATED
//                 (y[r] is already frozen at the decided value, so any
//                 re-decision must agree);
//   flag-reset    x[r, v] := 0              — predicted UNSAFE (it can
//                 erase the very flag that certifies a conflicting
//                 preference exists, enabling a conflicting decision);
//   y-overwrite   y[r] := v̄                 — predicted UNSAFE (it can
//                 poison the frozen round proposal after a decision).
//
// Expected shape: tolerated rows show 0 agreement violations across all
// runs; unsafe rows show a nonzero violation rate.  Liveness (deciding
// within the horizon) holds in every class.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "tfr/common/rng.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;

namespace {

constexpr sim::Duration kDelta = 100;
constexpr std::uint64_t kSeeds = 300;

enum class Corruption { kFlagSet, kDecideReset, kFlagReset, kYOverwrite };

const char* name_of(Corruption c) {
  switch (c) {
    case Corruption::kFlagSet: return "flag-set (0->1)";
    case Corruption::kDecideReset: return "decide-reset (v->bot)";
    case Corruption::kFlagReset: return "flag-reset (1->0)";
    default: return "y-overwrite (v->conflicting)";
  }
}

struct Row {
  std::uint64_t violating_runs = 0;
  std::uint64_t undecided_runs = 0;
};

Row sweep(Corruption corruption) {
  Row row;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    auto injector = std::make_unique<sim::FailureInjector>(
        sim::make_uniform_timing(1, kDelta), kDelta);
    injector->set_random_failures(0.10, 8 * kDelta);

    sim::Simulation s(std::move(injector), {.seed = seed});
    core::SimConsensus consensus(s.space(), kDelta);
    consensus.monitor().throw_on_violation(false);
    const std::vector<int> inputs{0, 1, 0, 1};
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      consensus.monitor().set_input(static_cast<sim::Pid>(i), inputs[i]);
      s.spawn([&consensus, input = inputs[i]](sim::Env env) {
        return consensus.participant(env, input);
      });
    }

    // Inject one corruption at a random instant while the protocol is in
    // flight (between events; costs no time, like a hardware bit flip).
    Rng rng(seed * 977 + 13);
    const sim::Time when = rng.uniform(2 * kDelta, 9 * kDelta);
    s.run(when);
    const std::size_t round = consensus.max_round();
    const int v = static_cast<int>(rng.uniform(0, 1));
    switch (corruption) {
      case Corruption::kFlagSet:
        consensus.fault_set_flag(v, round);
        break;
      case Corruption::kDecideReset:
        consensus.fault_reset_decide();
        break;
      case Corruption::kFlagReset:
        consensus.fault_reset_flag(v, round);
        break;
      case Corruption::kYOverwrite:
        consensus.fault_overwrite_proposal(round, v);
        break;
    }
    s.run(10'000'000);

    row.violating_runs += (consensus.monitor().agreement_violations() > 0 ||
                           consensus.monitor().validity_violations() > 0);
    row.undecided_runs += !consensus.monitor().all_decided(inputs.size());
  }
  return row;
}

}  // namespace

TFR_BENCH_EXPERIMENT(E14, "section 4 (open problems)", bench::Tier::kSmoke,
                     "transient memory failures + timing failures (§4): "
                     "which corruptions Algorithm 1 tolerates") {
  Table table;
  table.header({"corruption class", "runs with safety violation",
                "undecided runs", "verdict"});

  Row flag_set = sweep(Corruption::kFlagSet);
  Row decide_reset = sweep(Corruption::kDecideReset);
  Row flag_reset = sweep(Corruption::kFlagReset);
  Row y_overwrite = sweep(Corruption::kYOverwrite);

  auto verdict = [](const Row& row) {
    return row.violating_runs == 0 ? "tolerated" : "UNSAFE";
  };
  for (const auto& [c, row] :
       {std::pair{Corruption::kFlagSet, flag_set},
        std::pair{Corruption::kDecideReset, decide_reset},
        std::pair{Corruption::kFlagReset, flag_reset},
        std::pair{Corruption::kYOverwrite, y_overwrite}}) {
    table.row({name_of(c),
               Table::fmt(static_cast<unsigned long long>(row.violating_runs)),
               Table::fmt(static_cast<unsigned long long>(row.undecided_runs)),
               verdict(row)});
  }
  table.print(rec.out());

  rec.metric("tolerated.violating_runs",
             static_cast<double>(flag_set.violating_runs +
                                 decide_reset.violating_runs));
  rec.metric("unsafe.violating_runs",
             static_cast<double>(flag_reset.violating_runs +
                                 y_overwrite.violating_runs));
  rec.expect(flag_set.violating_runs == 0,
             "spurious flag-set corruptions are tolerated "
             "(cost an extra round at most)");
  rec.expect(decide_reset.violating_runs == 0,
             "decide-reset corruptions are tolerated "
             "(the frozen y[r] forces the same re-decision)");
  rec.expect(flag_reset.violating_runs + y_overwrite.violating_runs > 0,
             "flag-reset / y-overwrite corruptions can break agreement "
             "— charting the open problem's boundary");
  rec.expect(flag_set.undecided_runs + decide_reset.undecided_runs +
                     flag_reset.undecided_runs +
                     y_overwrite.undecided_runs ==
                 0,
             "liveness survives every corruption class");
}
