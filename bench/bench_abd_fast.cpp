// E22 — per-peer timeliness graphs + fast-quorum/fast-read ABD: the
// TimelinessEstimator's per-channel windows stop collapsing into one
// global estimate (Delporte-Gallet et al., timeliness graphs), so each
// server's ack window derives from its own channel and a phase waits only
// for the timely majority; on top, the Mostéfaoui–Raynal fast read skips
// the write-back round whenever every quorum ack carries the same tag.
// Claims under test:
//   * under a heterogeneous replica mix (one slow box, one lossy box) the
//     per-peer variants strictly dominate the stock global-window client
//     on steps/op and p99 — the straggler inflates the global estimate,
//     so when the lossy replica drops an ack the stock client sits out a
//     straggler-sized window while the per-peer client retries through
//     the loss at timely-majority speed;
//   * the fast read rides the clean path: > 80% of reads skip the
//     write-back in the clean cell, halving read phases;
//   * the timeliness graph classifies the slow box as the one straggler
//     and keeps the timely majority timely;
//   * none of it costs safety: linearizability holds and violations are
//     exactly zero in every cell — tfr_mcheck's abd-fast scenario proves
//     the skip-write-back read exhaustively, and this experiment pins the
//     exploration counters;
//   * the Shard seam serves the same heterogeneous mix with the fast
//     variant at no p99 cost relative to stock (service latency is
//     batch-dominated; the win is the client-level round count).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "tfr/adapt/controller.hpp"
#include "tfr/adapt/graph.hpp"
#include "tfr/mcheck/explorer.hpp"
#include "tfr/mcheck/scenarios.hpp"
#include "tfr/msg/abd.hpp"
#include "tfr/msg/adversary.hpp"
#include "tfr/msg/convergence.hpp"
#include "tfr/service/service.hpp"

using namespace tfr;

namespace {

constexpr sim::Duration kStep = 50;  // per-channel access cost bound

/// The E21 adaptive retry discipline: first window = 2.0 x the estimate
/// (global for stock, per-peer for the graph variants), small backoff.
msg::RetryPolicy adaptive_policy() {
  msg::RetryPolicy policy;
  policy.timeout = 40 * kStep;
  policy.timeout_growth = 2.0;
  policy.max_timeout = 320 * kStep;
  policy.backoff = 2 * kStep;
  policy.backoff_growth = 2.0;
  policy.max_backoff = 40 * kStep;
  policy.jitter = kStep;
  policy.poll_every = 5;
  policy.timeout_per_delta = 2.0;
  return policy;
}

adapt::TimelinessEstimator::Config estimator_config() {
  return {.initial = 2 * kStep,
          .floor = kStep,
          .ceiling = 320 * kStep,
          .window = 32,
          .quantile = 0.9,
          .headroom = 2.0,
          .grow_factor = 2.0,
          .decay_step = kStep,
          .clean_threshold = 2,
          .boost_cap = 2.0};
}

/// The slow box: every message touching the replica is held an extra
/// [40, 60] steps each way — a straggler, not a crash.  The delay must
/// dwarf the timely round-trip (~10 steps): the per-peer window (sized
/// by the majority-th timely estimate, ~40 steps) then expires and
/// retries through the lossy replica instead of waiting ~100 steps for
/// the straggler's ack, and the straggler's estimate clears the 4x
/// classification threshold.
msg::ChannelFaults slow_faults() {
  msg::ChannelFaults faults;
  faults.delay = 1.0;
  faults.delay_min = 40 * kStep;
  faults.delay_max = 60 * kStep;
  return faults;
}

/// The lossy box: 30% of messages touching the replica vanish.
msg::ChannelFaults lossy_faults() {
  msg::ChannelFaults faults;
  faults.drop = 0.30;
  return faults;
}

constexpr int kSlowReplica = 1;
constexpr int kLossyReplica = 2;

/// Applies `faults` to every channel touching `endpoint`, both directions.
void fault_endpoint(msg::NetAdversary& adversary, int endpoint, int total,
                    const msg::ChannelFaults& faults) {
  for (int other = 0; other < total; ++other) {
    if (other == endpoint) continue;
    adversary.set_channel_faults(endpoint, other, faults);
    adversary.set_channel_faults(other, endpoint, faults);
  }
}

// ---------------------------------------------------------- client cell --

struct ClientRun {
  bool all_done = false;
  bool linearizable = false;
  std::uint64_t safety_violations = 0;
  std::uint64_t operations = 0;
  std::uint64_t retries = 0;
  std::uint64_t fast_reads = 0;
  std::uint64_t fast_read_misses = 0;
  std::size_t stragglers = 0;   ///< graph classification after the run
  bool slow_is_straggler = false;
  Samples op_latency;           ///< per completed op, ticks
};

sim::Process rw_loop(sim::Env env, msg::AbdClient& client, int reg, int ops,
                     std::int64_t base, int* finished, Samples* latency) {
  for (int i = 0; i < ops; ++i) {
    sim::Time t0 = env.now();
    co_await client.write(env, reg, base + i);
    latency->add(static_cast<double>(env.now() - t0));
    t0 = env.now();
    co_await client.read(env, reg);
    latency->add(static_cast<double>(env.now() - t0));
  }
  ++*finished;
}

/// One n=3 run: two clients issuing `ops` write+read pairs each (the
/// second client is the concurrent writer that can force mixed-tag
/// quorums), all clients sharing one estimator so per-server channels
/// pool observations.  `heterogeneous` arms the slow + lossy boxes on the
/// two non-clean replicas' server endpoints.
ClientRun run_client(msg::RegisterVariant variant, bool heterogeneous,
                     int ops, std::uint64_t seed) {
  adapt::TimelinessEstimator estimator(estimator_config());
  sim::Simulation s(sim::make_uniform_timing(1, kStep), {.seed = seed});
  const int n = 3;
  msg::Network net(s.space(), 2 * n);
  msg::NetAdversary adversary(0xabdfa57ULL + seed);
  if (heterogeneous) {
    fault_endpoint(adversary, n + kSlowReplica, 2 * n, slow_faults());
    fault_endpoint(adversary, n + kLossyReplica, 2 * n, lossy_faults());
  }
  adversary.arm(s);
  net.set_adversary(&adversary);
  msg::ConvergenceMonitor monitor;
  monitor.set_adversary(&adversary);

  ClientRun out;
  int finished = 0;
  std::vector<std::unique_ptr<msg::AbdClient>> clients;
  for (int i = 0; i < 2; ++i) {
    clients.push_back(
        std::make_unique<msg::AbdClient>(net, i, n, adaptive_policy()));
    clients.back()->set_monitor(&monitor);
    clients.back()->set_delta_controller(&estimator);
    clients.back()->set_variant(variant);
  }
  for (int i = 0; i < 2; ++i) {
    s.spawn([&clients, &out, &finished, i, ops](sim::Env env) {
      return rw_loop(env, *clients[static_cast<std::size_t>(i)], 1, ops,
                     100 * (i + 1), &finished, &out.op_latency);
    });
  }
  for (int i = 0; i < n; ++i) {
    s.spawn(
        [&net, i, n](sim::Env env) { return msg::abd_server(env, net, i, n); });
  }
  s.run(8'000'000'000, [&] { return finished == 2; });

  out.all_done = finished == 2;
  out.linearizable = monitor.check().linearizable;
  out.safety_violations = monitor.safety_violations();
  for (const auto& c : clients) {
    out.operations += c->operations();
    out.retries += c->retries();
    out.fast_reads += c->fast_reads();
    out.fast_read_misses += c->fast_read_misses();
  }
  const adapt::TimelinessGraph graph(estimator);
  out.stragglers = graph.stragglers();
  out.slow_is_straggler =
      graph.classify(kSlowReplica) == adapt::PeerClass::kStraggler;
  return out;
}

const char* variant_label(msg::RegisterVariant variant) {
  return msg::register_variant_name(variant);
}

double hit_rate(const ClientRun& run) {
  const double total =
      static_cast<double>(run.fast_reads + run.fast_read_misses);
  return total > 0 ? static_cast<double>(run.fast_reads) / total : 0.0;
}

// --------------------------------------------------------- service cell --

service::ServiceConfig service_config(msg::RegisterVariant variant,
                                      adapt::DeltaController* controller) {
  service::ServiceConfig config;
  config.shards = 1;
  config.step = kStep;
  config.sim_seed = 1;
  config.shard.replicas = 3;
  config.shard.delta = kStep;
  config.shard.abd_retry = adaptive_policy();
  config.shard.batch.max_batch = 256;
  config.shard.batch.max_wait = 4 * kStep;
  config.shard.queue_capacity = 4096;
  config.shard.drain_hint = 8;
  config.shard.poll_every = kStep;
  config.shard.controller = controller;
  config.shard.batch_wait_deltas = 2.0;
  config.shard.register_variant = variant;
  // The heterogeneous mix as replica boxes behind the Shard seam: the
  // slow and lossy replicas' *server* endpoints only, so the elected
  // frontend (replica 0) stays clean and the comparison isolates the
  // register variant.
  config.shard.replica_faults.push_back(
      {.replica = kSlowReplica, .faults = slow_faults()});
  config.shard.replica_faults.push_back(
      {.replica = kLossyReplica, .faults = lossy_faults()});
  config.load.sessions = 8'000;
  config.load.arrivals_per_tick = 0.15;
  config.load.tick = kStep;
  config.load.retry = adaptive_policy();
  config.load.max_attempts = 6;
  config.load.route_seed = 11;
  return config;
}

// ---------------------------------------------------------- mcheck cell --

mcheck::ExploreConfig mcheck_config() {
  mcheck::ExploreConfig config;
  config.delta = 2;
  config.failure_cost = 5;
  config.max_failures = 0;
  config.slow_budget = 0;
  config.max_steps = 600;
  return config;
}

}  // namespace

TFR_BENCH_EXPERIMENT(E22, "timeliness graphs + fast quorums (ABD variants)",
                     bench::Tier::kSmoke,
                     "per-peer ack windows from timeliness graphs and the "
                     "Mostefaoui-Raynal fast read: stragglers stop sizing "
                     "quorum waits, clean reads take one round; safety "
                     "exhaustively checked") {
  constexpr int kOps = 120;       // write+read pairs per client per run
  constexpr std::uint64_t kSeeds = 3;
  const msg::RegisterVariant kVariants[3] = {
      msg::RegisterVariant::kStock, msg::RegisterVariant::kPerPeer,
      msg::RegisterVariant::kPerPeerFastRead};

  // (a) heterogeneous mix: one slow box, one lossy box, three variants.
  Table het("ABD client, n=3, slow replica (+[40,60] steps each way) + "
            "lossy replica (30% drop): register variants");
  het.header({"variant", "completed", "linearizable", "steps/op (mean)",
              "p99 /step", "p999 /step", "retries/op", "fast-read hit"});
  ClientRun het_runs[3];
  std::uint64_t violations_het = 0;
  for (int v = 0; v < 3; ++v) {
    ClientRun& agg = het_runs[v];
    agg.all_done = agg.linearizable = true;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      ClientRun r = run_client(kVariants[v], /*heterogeneous=*/true, kOps,
                               seed);
      agg.all_done &= r.all_done;
      agg.linearizable &= r.linearizable;
      agg.safety_violations += r.safety_violations;
      agg.operations += r.operations;
      agg.retries += r.retries;
      agg.fast_reads += r.fast_reads;
      agg.fast_read_misses += r.fast_read_misses;
      agg.stragglers = std::max(agg.stragglers, r.stragglers);
      agg.slow_is_straggler |= r.slow_is_straggler;
      for (double x : r.op_latency.values()) agg.op_latency.add(x);
    }
    violations_het += agg.safety_violations;
    het.row({variant_label(kVariants[v]), agg.all_done ? "yes" : "NO",
             agg.linearizable ? "yes" : "NO",
             Table::fmt(agg.op_latency.mean() / static_cast<double>(kStep), 1),
             Table::fmt(agg.op_latency.percentile(99) /
                            static_cast<double>(kStep), 1),
             Table::fmt(agg.op_latency.percentile(99.9) /
                            static_cast<double>(kStep), 1),
             Table::fmt(static_cast<double>(agg.retries) /
                            static_cast<double>(agg.operations), 2),
             kVariants[v] == msg::RegisterVariant::kPerPeerFastRead
                 ? Table::fmt(hit_rate(agg), 2)
                 : "-"});
  }
  het.print(rec.out());
  const auto steps_per_op = [](const ClientRun& run) {
    return run.op_latency.mean() / static_cast<double>(kStep);
  };
  const auto p99_steps = [](const ClientRun& run) {
    return run.op_latency.percentile(99) / static_cast<double>(kStep);
  };
  const auto p999_steps = [](const ClientRun& run) {
    return run.op_latency.percentile(99.9) / static_cast<double>(kStep);
  };
  rec.metric("het.stock.steps_per_op", steps_per_op(het_runs[0]));
  rec.metric("het.stock.p99_steps", p99_steps(het_runs[0]));
  rec.metric("het.stock.p999_steps", p999_steps(het_runs[0]));
  rec.metric("het.per_peer.steps_per_op", steps_per_op(het_runs[1]));
  rec.metric("het.per_peer.p99_steps", p99_steps(het_runs[1]));
  rec.metric("het.fast.steps_per_op", steps_per_op(het_runs[2]));
  rec.metric("het.fast.p99_steps", p99_steps(het_runs[2]));
  rec.metric("het.fast.p999_steps", p999_steps(het_runs[2]));
  rec.metric("het.fast.hit_rate", hit_rate(het_runs[2]));
  rec.expect(het_runs[0].all_done && het_runs[1].all_done &&
                 het_runs[2].all_done && het_runs[0].linearizable &&
                 het_runs[1].linearizable && het_runs[2].linearizable,
             "every variant completes linearizably under the "
             "heterogeneous mix");
  rec.expect(steps_per_op(het_runs[2]) < steps_per_op(het_runs[0]) &&
                 p99_steps(het_runs[2]) < p99_steps(het_runs[0]),
             "per-peer + fast read strictly dominates stock on steps/op "
             "and p99 under the heterogeneous mix");
  rec.expect(steps_per_op(het_runs[1]) < steps_per_op(het_runs[0]),
             "per-peer windows alone already beat the global window (the "
             "straggler stops sizing every phase's wait)");
  rec.expect(het_runs[2].slow_is_straggler && het_runs[2].stragglers == 1,
             "the timeliness graph classifies exactly the slow box as a "
             "straggler");

  // (b) clean network: the fast read's common path.
  Table clean("ABD client, n=3, clean network: fast-read hit rate");
  clean.header({"variant", "steps/op (mean)", "fast reads", "write-backs",
                "hit rate"});
  ClientRun clean_runs[3];
  std::uint64_t violations_clean = 0;
  for (int v = 0; v < 3; ++v) {
    ClientRun& agg = clean_runs[v];
    agg.all_done = agg.linearizable = true;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      ClientRun r = run_client(kVariants[v], /*heterogeneous=*/false, kOps,
                               seed);
      agg.all_done &= r.all_done;
      agg.linearizable &= r.linearizable;
      agg.safety_violations += r.safety_violations;
      agg.operations += r.operations;
      agg.fast_reads += r.fast_reads;
      agg.fast_read_misses += r.fast_read_misses;
      for (double x : r.op_latency.values()) agg.op_latency.add(x);
    }
    violations_clean += agg.safety_violations;
    clean.row({variant_label(kVariants[v]),
               Table::fmt(agg.op_latency.mean() / static_cast<double>(kStep),
                          1),
               Table::fmt(static_cast<unsigned long long>(agg.fast_reads)),
               Table::fmt(
                   static_cast<unsigned long long>(agg.fast_read_misses)),
               kVariants[v] == msg::RegisterVariant::kPerPeerFastRead
                   ? Table::fmt(hit_rate(agg), 2)
                   : "-"});
  }
  clean.print(rec.out());
  rec.metric("clean.stock.steps_per_op", steps_per_op(clean_runs[0]));
  rec.metric("clean.fast.steps_per_op", steps_per_op(clean_runs[2]));
  rec.metric("clean.fast.hit_rate", hit_rate(clean_runs[2]));
  rec.expect(clean_runs[0].all_done && clean_runs[2].all_done &&
                 clean_runs[0].linearizable && clean_runs[2].linearizable,
             "clean cells complete linearizably");
  rec.expect(hit_rate(clean_runs[2]) > 0.8,
             "more than 80% of clean-path reads skip the write-back");
  rec.expect(steps_per_op(clean_runs[2]) < steps_per_op(clean_runs[0]),
             "the one-round read shows up as fewer steps/op on a clean "
             "network");

  // (c) the Shard seam: stock vs fast under the same heterogeneous boxes.
  adapt::TimelinessEstimator svc_stock_est(estimator_config());
  adapt::TimelinessEstimator svc_fast_est(estimator_config());
  const service::ServiceReport svc_stock = service::run_service(
      service_config(msg::RegisterVariant::kStock, &svc_stock_est));
  const service::ServiceReport svc_fast = service::run_service(
      service_config(msg::RegisterVariant::kPerPeerFastRead, &svc_fast_est));
  Table svc("service: 1 shard x 8k sessions, slow + lossy replica boxes, "
            "register variant behind the Shard seam");
  svc.header({"variant", "served", "violations", "abd ops", "fast reads",
              "p99 /step", "p999 /step"});
  const service::ServiceReport* reports[2] = {&svc_stock, &svc_fast};
  const char* names[2] = {"stock", "per_peer_fast"};
  for (int i = 0; i < 2; ++i) {
    const service::ServiceReport& r = *reports[i];
    svc.row({names[i], Table::fmt(static_cast<unsigned long long>(r.served)),
             Table::fmt(static_cast<unsigned long long>(
                 r.safety_violations + r.readback_mismatches)),
             Table::fmt(static_cast<unsigned long long>(r.abd_operations)),
             Table::fmt(static_cast<unsigned long long>(r.abd_fast_reads)),
             Table::fmt(r.latency.percentile(99) / static_cast<double>(kStep),
                        1),
             Table::fmt(
                 r.latency.percentile(99.9) / static_cast<double>(kStep),
                 1)});
  }
  svc.print(rec.out());
  const std::uint64_t violations_svc =
      svc_stock.safety_violations + svc_stock.readback_mismatches +
      svc_fast.safety_violations + svc_fast.readback_mismatches;
  rec.metric("svc.stock.p99_steps",
             svc_stock.latency.percentile(99) / static_cast<double>(kStep));
  rec.metric("svc.stock.p999_steps",
             svc_stock.latency.percentile(99.9) / static_cast<double>(kStep));
  rec.metric("svc.fast.p99_steps",
             svc_fast.latency.percentile(99) / static_cast<double>(kStep));
  rec.metric("svc.fast.p999_steps",
             svc_fast.latency.percentile(99.9) / static_cast<double>(kStep));
  rec.metric("svc.fast.fast_reads",
             static_cast<double>(svc_fast.abd_fast_reads));
  rec.expect(svc_stock.all_elected && svc_stock.complete() &&
                 svc_fast.all_elected && svc_fast.complete(),
             "both service rows serve every session through the "
             "heterogeneous shard");
  rec.expect(svc_stock.linearizable && svc_fast.linearizable,
             "shard histories linearize for both register variants");
  rec.expect(svc_fast.abd_fast_reads > 0 && svc_stock.abd_fast_reads == 0,
             "the Shard seam actually switches the register variant");
  rec.expect(svc_fast.latency.percentile(99) <=
                 1.05 * svc_stock.latency.percentile(99),
             "the fast variant costs no service p99 (batch-dominated "
             "latency, fewer quorum rounds underneath)");

  // (d) exhaustive safety: the mcheck scenario per variant, counters
  // pinned exactly (deterministic DFS, jobs-parity checked in CI).
  Table mc("mcheck abd scenario (n=3, one server crashed), per variant");
  mc.header({"variant", "complete", "violation", "executions", "states"});
  mcheck::CheckResult mc_results[3];
  for (int v = 0; v < 3; ++v) {
    mcheck::AbdScenarioConfig scenario;
    scenario.variant = kVariants[v];
    mc_results[v] =
        mcheck::check(mcheck::make_abd_scenario(scenario), mcheck_config());
    mc.row({variant_label(kVariants[v]),
            mc_results[v].stats.complete ? "yes" : "NO",
            mc_results[v].violation ? "YES" : "no",
            Table::fmt(static_cast<unsigned long long>(
                mc_results[v].stats.executions)),
            Table::fmt(static_cast<unsigned long long>(
                mc_results[v].stats.states))});
  }
  mc.print(rec.out());
  rec.metric("mcheck.stock.executions",
             static_cast<double>(mc_results[0].stats.executions));
  rec.metric("mcheck.stock.states",
             static_cast<double>(mc_results[0].stats.states));
  rec.metric("mcheck.fast.executions",
             static_cast<double>(mc_results[2].stats.executions));
  rec.metric("mcheck.fast.states",
             static_cast<double>(mc_results[2].stats.states));
  rec.expect(mc_results[0].stats.complete && mc_results[1].stats.complete &&
                 mc_results[2].stats.complete && !mc_results[0].violation &&
                 !mc_results[1].violation && !mc_results[2].violation,
             "every variant's schedule space is exhausted with no "
             "linearizability violation");
  rec.expect(mc_results[2].stats.executions < mc_results[0].stats.executions,
             "the one-round read shrinks the fast variant's schedule "
             "space below stock's");

  // The number the baseline pins exactly: zero safety violations in every
  // cell of the experiment.
  rec.metric("violations.total",
             static_cast<double>(violations_het + violations_clean +
                                 violations_svc));
  rec.expect(violations_het + violations_clean + violations_svc == 0,
             "no safety violation anywhere: per-peer windows and fast "
             "reads are performance-only");
}
