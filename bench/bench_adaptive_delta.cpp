// E21 — adaptive optimistic(Δ) under drifting step times: one
// DeltaController seam (src/adapt/) feeds the sim consensus delay(Δ), the
// ABD retry windows and the service batch deadlines, and this experiment
// measures what the adaptation buys and proves what it cannot cost.
// Claims under test (§1.2, §3.3 — "adjust optimistic(Δ) ... similar to
// TCP congestion control"):
//   * decision time tracks the environment, not the engineered worst
//     case: under a fast/slow/fast regime drift the adaptive rows decide
//     far faster than the static pessimistic-Δ row and complete more
//     instances in the same virtual time;
//   * the TimelinessEstimator converges after each regime switch — the
//     estimate reaches the new oracle δ within a bounded number of
//     instances on the way up, and decays back within a bounded number
//     on the way down;
//   * safety is estimate-independent: agreement/validity violations are
//     exactly zero in EVERY cell — adaptive, oracle-pinned, pessimistic
//     — under drift and under the E19 acceptance fault mix (tfr_mcheck
//     --mistuned exhausts the same claim on small executions);
//   * adaptive ABD ack windows ride the E19 fault mix with a bounded
//     retry amplification and no loss of linearizability, and a service
//     shard retuning its batch deadline from the shared estimate stays
//     complete and linearizable.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "tfr/adapt/controller.hpp"
#include "tfr/adapt/observe.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/msg/abd.hpp"
#include "tfr/msg/adversary.hpp"
#include "tfr/msg/convergence.hpp"
#include "tfr/service/service.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;

namespace {

// ---------------------------------------------------------------- drift --

// The drifting environment: fast (uniform [1,20]) for the first stretch,
// a slow regime (uniform [1,200]) in the middle, then fast again.  The
// oracle δ at any instant is phase_at(now).hi; a pessimistic engineer who
// must cover preemption and worst-case contention picks kPessimistic.
constexpr sim::Duration kFastHi = 20;
constexpr sim::Duration kSlowHi = 200;
constexpr sim::Duration kPessimistic = 1000;
constexpr sim::Time kT1 = 10'000;   // fast -> slow
constexpr sim::Time kT2 = 30'000;   // slow -> fast
constexpr sim::Time kEnd = 50'000;  // row horizon (virtual time)

std::vector<sim::TimingPhase> drift_phases() {
  return {{.start = 0, .lo = 1, .hi = kFastHi},
          {.start = kT1, .lo = 1, .hi = kSlowHi},
          {.start = kT2, .lo = 1, .hi = kFastHi}};
}

enum class RowKind { kAimd, kTimeliness, kOracle, kPessimistic };

const char* row_name(RowKind kind) {
  switch (kind) {
    case RowKind::kAimd: return "aimd";
    case RowKind::kTimeliness: return "timeliness";
    case RowKind::kOracle: return "oracle";
    case RowKind::kPessimistic: return "pessimistic";
  }
  return "?";
}

struct DriftRow {
  std::uint64_t violations = 0;
  std::uint64_t instances = 0;
  std::uint64_t failures = 0;
  std::uint64_t cleans = 0;
  Samples decide[3];          ///< decide latency per regime, ticks
  sim::Duration est_last[3] = {0, 0, 0};  ///< estimate at regime end
  // TimelinessEstimator convergence, in instances after each switch:
  // up = first estimate >= the new (larger) oracle hi after kT1,
  // down = first estimate <= 4x the fast hi after kT2.  -1 = never.
  std::int64_t converge_up = -1;
  std::int64_t converge_down = -1;
};

int regime_of(sim::Time now) { return now >= kT2 ? 2 : now >= kT1 ? 1 : 0; }

/// One drift run: back-to-back 2-process consensus instances on a single
/// virtual clock until the horizon.  Each instance runs to Idle — both
/// participants terminate after deciding — so no coroutine frame can
/// outlive the instance's registers (RegisterSpace lifetime contract).
DriftRow run_drift(RowKind kind, std::uint64_t seed) {
  // Controllers must outlive the Simulation (the timing decorator and the
  // per-instance algorithm both point at them).
  adapt::Aimd aimd({.initial = 1,
                    .floor = 1,
                    .ceiling = kPessimistic,
                    .grow_factor = 2.0,
                    .decay_step = 4,
                    .clean_threshold = 2});
  adapt::TimelinessEstimator timeliness({.initial = 1,
                                         .floor = 1,
                                         .ceiling = kPessimistic,
                                         .window = 64,
                                         .quantile = 1.0,
                                         .headroom = 2.0,
                                         .grow_factor = 2.0,
                                         .decay_step = 8,
                                         .clean_threshold = 1});
  adapt::ManualDelta oracle{kFastHi};
  adapt::DeltaController* controller = nullptr;
  switch (kind) {
    case RowKind::kAimd: controller = &aimd; break;
    case RowKind::kTimeliness: controller = &timeliness; break;
    case RowKind::kOracle: controller = &oracle; break;
    case RowKind::kPessimistic: controller = nullptr; break;
  }

  auto phased = std::make_unique<sim::PhasedTiming>(drift_phases());
  sim::PhasedTiming* oracle_view = phased.get();  // outlives the move below
  std::unique_ptr<sim::TimingModel> timing = std::move(phased);
  if (kind == RowKind::kTimeliness) {
    // Fold the ever-growing pid space into 4 live channels; see
    // ObservingTiming for why stale windows must not linger.
    timing = std::make_unique<adapt::ObservingTiming>(std::move(timing),
                                                      &timeliness, 4);
  }
  sim::Simulation s(std::move(timing), {.seed = seed});

  DriftRow row;
  while (s.now() < kEnd && row.instances < 4000) {
    if (kind == RowKind::kOracle)
      oracle.set(oracle_view->phase_at(s.now()).hi);
    const sim::Duration est =
        controller != nullptr ? controller->current() : kPessimistic;
    const sim::Time start = s.now();
    const int regime = regime_of(start);
    if (kind == RowKind::kTimeliness && regime == 1 &&
        row.converge_up < 0 && est >= kSlowHi) {
      row.converge_up = static_cast<std::int64_t>(row.instances);
    }
    if (kind == RowKind::kTimeliness && regime == 2 &&
        row.converge_down < 0 && est <= 4 * kFastHi) {
      row.converge_down = static_cast<std::int64_t>(row.instances);
    }

    core::SimConsensus consensus(s.space(), kPessimistic);
    consensus.set_delta_controller(controller);
    consensus.monitor().throw_on_violation(false);
    for (int input : {0, 1}) {
      s.spawn(
          [&consensus, input](sim::Env env) {
            return consensus.participant(env, input);
          },
          /*start=*/s.now());
    }
    s.run();  // to Idle: both participants decided and terminated

    row.violations += consensus.monitor().agreement_violations() +
                      consensus.monitor().validity_violations();
    ++row.instances;
    row.decide[regime].add(
        static_cast<double>(consensus.monitor().last_decision_time() - start));
    row.est_last[regime] = est;
  }
  // Reset convergence counters to "instances after the switch".
  if (row.converge_up >= 0) {
    std::int64_t before = 0;
    for (std::size_t r = 0; r < 1; ++r)
      before += static_cast<std::int64_t>(row.decide[r].count());
    row.converge_up -= before;
  }
  if (row.converge_down >= 0) {
    std::int64_t before = static_cast<std::int64_t>(row.decide[0].count()) +
                          static_cast<std::int64_t>(row.decide[1].count());
    row.converge_down -= before;
  }
  if (controller != nullptr) {
    row.failures = controller->failure_events();
    row.cleans = controller->clean_events();
  }
  return row;
}

// ------------------------------------------------------------------ msg --

constexpr sim::Duration kStep = 50;  // E19's per-channel access cost bound

/// The E19 hardened retry discipline (static ack windows).
msg::RetryPolicy static_policy() {
  msg::RetryPolicy policy;
  policy.timeout = 40 * kStep;
  policy.timeout_growth = 2.0;
  policy.max_timeout = 320 * kStep;
  policy.backoff = 2 * kStep;
  policy.backoff_growth = 2.0;
  policy.max_backoff = 40 * kStep;
  policy.jitter = kStep;
  policy.poll_every = 5;
  return policy;
}

/// The engineer who could not tune: cover the worst case with the
/// maximum window (what a deployment does when nobody measured RTTs).
msg::RetryPolicy pessimistic_policy() {
  msg::RetryPolicy policy = static_policy();
  policy.timeout = 320 * kStep;
  return policy;
}

/// The same discipline with the initial window derived from the shared
/// estimate instead of an engineered guess.
msg::RetryPolicy adaptive_policy() {
  msg::RetryPolicy policy = static_policy();
  policy.timeout_per_delta = 2.0;
  return policy;
}

/// The ABD controller is RTT-driven (the client reports each successful
/// quorum's round trip as an observation): the window tracks 2x the
/// windowed p90 RTT.  A pure AIMD policy would overshoot here — under a
/// 20% drop rate expiries keep firing at ANY window size, so growing on
/// every expiry runs the estimate into the ceiling; the estimator's
/// boost also grows on expiry but decays as soon as quorums land.
adapt::TimelinessEstimator::Config abd_controller_config() {
  return {.initial = 2 * kStep,
          .floor = kStep,
          .ceiling = 320 * kStep,
          .window = 32,
          .quantile = 0.9,
          .headroom = 2.0,
          .grow_factor = 2.0,
          .decay_step = kStep,
          .clean_threshold = 2,
          .boost_cap = 2.0};
}

/// The E19 acceptance-criterion fault mix: 20% drop, 5% duplicate,
/// reorder on.
msg::ChannelFaults acceptance_faults() {
  msg::ChannelFaults faults;
  faults.drop = 0.20;
  faults.duplicate = 0.05;
  faults.reorder = 0.25;
  faults.reorder_hold = 4 * kStep;
  return faults;
}

sim::Process abd_workload(sim::Env env, msg::AbdClient& client, int reg,
                          std::int64_t value, int* done, sim::Time* finish) {
  co_await client.write(env, reg, value);
  co_await client.read(env, reg);
  ++*done;
  if (env.now() > *finish) *finish = env.now();
}

struct AbdRun {
  bool all_done = false;
  bool linearizable = false;
  std::uint64_t safety_violations = 0;
  std::uint64_t operations = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  sim::Time finish = -1;
  sim::Duration estimate = 0;  ///< controller estimate after the run
};

/// One n=3 ABD run (every node writes then reads one register) under the
/// acceptance fault mix; with `controller` set, all three clients share it
/// (one virtual clock — the single-threaded Aimd is safe here).
AbdRun run_abd(const msg::RetryPolicy& policy,
               adapt::DeltaController* controller, std::uint64_t net_seed,
               std::uint64_t seed) {
  sim::Simulation s(sim::make_uniform_timing(1, kStep), {.seed = seed});
  const int n = 3;
  msg::Network net(s.space(), 2 * n);
  msg::NetAdversary adversary(net_seed);
  adversary.set_default_faults(acceptance_faults());
  adversary.arm(s);
  net.set_adversary(&adversary);
  msg::ConvergenceMonitor monitor;
  monitor.set_adversary(&adversary);

  int done = 0;
  sim::Time finish = -1;
  std::vector<std::unique_ptr<msg::AbdClient>> clients;
  for (int i = 0; i < n; ++i) {
    clients.push_back(std::make_unique<msg::AbdClient>(net, i, n, policy));
    clients.back()->set_monitor(&monitor);
    clients.back()->set_delta_controller(controller);
  }
  for (int i = 0; i < n; ++i) {
    s.spawn([&clients, &done, &finish, i](sim::Env env) {
      return abd_workload(env, *clients[static_cast<std::size_t>(i)], 1,
                          100 + i, &done, &finish);
    });
  }
  for (int i = 0; i < n; ++i) {
    s.spawn(
        [&net, i, n](sim::Env env) { return msg::abd_server(env, net, i, n); });
  }
  s.run(8'000'000'000, [&] { return done == n; });

  AbdRun out;
  out.all_done = done == n;
  out.linearizable = monitor.check().linearizable;
  out.safety_violations = monitor.safety_violations();
  for (const auto& c : clients) {
    out.operations += c->operations();
    out.retries += c->retries();
    out.timeouts += c->timeouts();
  }
  out.finish = finish;
  out.estimate = controller != nullptr ? controller->current() : 0;
  return out;
}

// -------------------------------------------------------------- service --

service::ServiceConfig service_config(adapt::DeltaController* controller) {
  service::ServiceConfig config;
  config.shards = 2;
  config.step = kStep;
  config.sim_seed = 1;
  config.shard.replicas = 3;
  config.shard.delta = kStep;
  config.shard.abd_retry =
      controller != nullptr ? adaptive_policy() : static_policy();
  config.shard.batch.max_batch = 256;
  config.shard.batch.max_wait = 4 * kStep;
  config.shard.queue_capacity = 4096;
  config.shard.drain_hint = 8;
  config.shard.poll_every = kStep;
  config.shard.controller = controller;
  config.shard.batch_wait_deltas = controller != nullptr ? 2.0 : 0.0;
  config.load.sessions = 20'000;
  config.load.arrivals_per_tick = 0.30;
  config.load.tick = kStep;
  config.load.retry = static_policy();
  config.load.max_attempts = 6;
  config.load.route_seed = 11;
  return config;
}

}  // namespace

TFR_BENCH_EXPERIMENT(E21, "sections 1.2, 3.3 (adaptive optimistic delta)",
                     bench::Tier::kSmoke,
                     "adaptive optimistic(delta): one controller seam "
                     "under drifting step times, fault-mix retry windows "
                     "and batch deadlines; safety estimate-independent") {
  constexpr std::uint64_t kSeeds = 3;

  // (a) drifting step times: adaptive vs oracle vs pessimistic consensus.
  Table drift("consensus under drift: fast[1,20] -> slow[1,200] -> fast, "
              "2 procs, 3 seeds");
  drift.header({"row", "instances", "violations", "decide fast (mean)",
                "decide slow (mean)", "est @fast1/slow/fast2",
                "grow/clean events"});
  DriftRow total[4];
  std::uint64_t drift_violations = 0;
  for (const RowKind kind : {RowKind::kAimd, RowKind::kTimeliness,
                             RowKind::kOracle, RowKind::kPessimistic}) {
    DriftRow& agg = total[static_cast<int>(kind)];
    std::int64_t worst_up = -1, worst_down = -1;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const DriftRow r = run_drift(kind, seed);
      agg.violations += r.violations;
      agg.instances += r.instances;
      agg.failures += r.failures;
      agg.cleans += r.cleans;
      for (int g = 0; g < 3; ++g) {
        for (std::size_t i = 0; i < r.decide[g].count(); ++i)
          agg.decide[g].add(r.decide[g].values()[i]);
        agg.est_last[g] = std::max(agg.est_last[g], r.est_last[g]);
      }
      worst_up = std::max(worst_up, r.converge_up);
      worst_down = std::max(worst_down, r.converge_down);
    }
    agg.converge_up = worst_up;
    agg.converge_down = worst_down;
    drift_violations += agg.violations;
    drift.row({row_name(kind),
               Table::fmt(static_cast<unsigned long long>(agg.instances)),
               Table::fmt(static_cast<unsigned long long>(agg.violations)),
               Table::fmt(agg.decide[0].mean(), 1),
               Table::fmt(agg.decide[1].mean(), 1),
               Table::fmt(static_cast<long long>(agg.est_last[0])) + "/" +
                   Table::fmt(static_cast<long long>(agg.est_last[1])) + "/" +
                   Table::fmt(static_cast<long long>(agg.est_last[2])),
               Table::fmt(static_cast<unsigned long long>(agg.failures)) +
                   "/" +
                   Table::fmt(static_cast<unsigned long long>(agg.cleans))});
  }
  drift.print(rec.out());
  const DriftRow& aimd = total[static_cast<int>(RowKind::kAimd)];
  const DriftRow& timeliness = total[static_cast<int>(RowKind::kTimeliness)];
  const DriftRow& oracle = total[static_cast<int>(RowKind::kOracle)];
  const DriftRow& pessimistic =
      total[static_cast<int>(RowKind::kPessimistic)];
  rec.metric("drift.violations", static_cast<double>(drift_violations));
  rec.metric("drift.aimd.instances", static_cast<double>(aimd.instances));
  rec.metric("drift.pessimistic.instances",
             static_cast<double>(pessimistic.instances));
  rec.metric("drift.aimd.decide_fast_mean", aimd.decide[0].mean());
  rec.metric("drift.aimd.decide_slow_mean", aimd.decide[1].mean());
  rec.metric("drift.oracle.decide_fast_mean", oracle.decide[0].mean());
  rec.metric("drift.pessimistic.decide_fast_mean",
             pessimistic.decide[0].mean());
  rec.metric("drift.pessimistic.decide_slow_mean",
             pessimistic.decide[1].mean());
  rec.metric("drift.timeliness.est_slow",
             static_cast<double>(timeliness.est_last[1]));
  rec.metric("drift.timeliness.est_fast_final",
             static_cast<double>(timeliness.est_last[2]));
  rec.metric("drift.timeliness.converge_up_instances",
             static_cast<double>(timeliness.converge_up));
  rec.metric("drift.timeliness.converge_down_instances",
             static_cast<double>(timeliness.converge_down));
  rec.expect(drift_violations == 0,
             "agreement and validity hold in every drift cell "
             "(safety is estimate-independent)");
  rec.expect(aimd.decide[0].mean() < pessimistic.decide[0].mean() &&
                 aimd.decide[1].mean() < pessimistic.decide[1].mean(),
             "adaptive decides faster than the pessimistic bound in every "
             "regime");
  rec.expect(aimd.instances > 2 * pessimistic.instances,
             "adaptation at least doubles decided instances per unit time "
             "under drift");
  rec.expect(timeliness.converge_up >= 0 && timeliness.converge_up <= 12,
             "the estimator reaches the new oracle delta within 12 "
             "instances of the slow switch");
  rec.expect(timeliness.converge_down >= 0 && timeliness.converge_down <= 24,
             "the estimate decays back within 24 instances of recovery");
  rec.expect(timeliness.est_last[1] >= kSlowHi &&
                 timeliness.est_last[1] <= kPessimistic,
             "the slow-regime estimate covers the oracle delta without "
             "exceeding the pessimistic bound");

  // (b) adaptive ABD ack windows under the E19 acceptance fault mix.
  adapt::TimelinessEstimator abd_controller(abd_controller_config());
  Table abd("ABD under 20% drop + 5% dup + 25% reorder: adaptive vs "
            "static windows (n = 3)");
  abd.header({"windows", "completed", "linearizable", "violations",
              "finish /step (mean)", "retries/op", "expiries"});
  struct Cell {
    const char* name = "";
    bool done = true;
    bool linearizable = true;
    std::uint64_t violations = 0;
    std::uint64_t operations = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    Samples finishes{};
    double finish_steps() const {
      return finishes.mean() / static_cast<double>(kStep);
    }
    double retries_per_op() const {
      return static_cast<double>(retries) / static_cast<double>(operations);
    }
  };
  Cell cells[3] = {{.name = "tuned static (40 steps)"},
                   {.name = "pessimistic static (320 steps)"},
                   {.name = "adaptive (2.0 x estimate)"}};
  for (int row = 0; row < 3; ++row) {
    Cell& cell = cells[row];
    const msg::RetryPolicy policy = row == 0   ? static_policy()
                                    : row == 1 ? pessimistic_policy()
                                               : adaptive_policy();
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const AbdRun r = run_abd(policy, row == 2 ? &abd_controller : nullptr,
                               40 + seed, seed);
      cell.done &= r.all_done;
      cell.linearizable &= r.linearizable;
      cell.violations += r.safety_violations;
      cell.operations += r.operations;
      cell.retries += r.retries;
      cell.timeouts += r.timeouts;
      if (r.finish >= 0) cell.finishes.add(static_cast<double>(r.finish));
    }
    abd.row({cell.name, cell.done ? "yes" : "NO",
             cell.linearizable ? "yes" : "NO",
             Table::fmt(static_cast<unsigned long long>(cell.violations)),
             Table::fmt(cell.finish_steps(), 1),
             Table::fmt(cell.retries_per_op(), 2),
             Table::fmt(static_cast<unsigned long long>(cell.timeouts))});
  }
  abd.print(rec.out());
  const std::uint64_t abd_violations =
      cells[0].violations + cells[1].violations + cells[2].violations;
  rec.metric("abd.violations", static_cast<double>(abd_violations));
  rec.metric("abd.tuned.finish_steps", cells[0].finish_steps());
  rec.metric("abd.pessimistic.finish_steps", cells[1].finish_steps());
  rec.metric("abd.adaptive.finish_steps", cells[2].finish_steps());
  rec.metric("abd.adaptive.retries_per_op", cells[2].retries_per_op());
  rec.metric("abd.adaptive.estimate_steps",
             static_cast<double>(abd_controller.current()) /
                 static_cast<double>(kStep));
  rec.expect(cells[0].done && cells[1].done && cells[2].done &&
                 cells[0].linearizable && cells[1].linearizable &&
                 cells[2].linearizable && abd_violations == 0,
             "every window discipline completes linearizably under the "
             "acceptance mix");
  rec.expect(cells[2].finishes.mean() < cells[1].finishes.mean(),
             "estimate-derived windows beat the untuned pessimistic cover "
             "(adaptation replaces hand-tuning)");
  rec.expect(cells[2].finishes.mean() <= 3.0 * cells[0].finishes.mean(),
             "adaptive windows stay within 3x of the hand-tuned sweet "
             "spot");
  rec.expect(cells[2].retries_per_op() <= 12.0,
             "adaptive retry amplification stays bounded (<= 12 sends/op)");

  // (c) a service shard retuning its batch deadline from the estimate.
  adapt::TimelinessEstimator service_controller(abd_controller_config());
  const service::ServiceReport adaptive_report =
      service::run_service(service_config(&service_controller));
  const service::ServiceReport static_report =
      service::run_service(service_config(nullptr));
  Table svc("service: 2 shards x 20k sessions, batch deadline = "
            "2.0 x shared estimate");
  svc.header({"rows", "served", "shed", "violations", "throughput /d",
              "p99 /d"});
  const service::ServiceReport* reports[2] = {&static_report,
                                              &adaptive_report};
  const char* names[2] = {"static deadline", "adaptive deadline"};
  for (int i = 0; i < 2; ++i) {
    const service::ServiceReport& r = *reports[i];
    svc.row({names[i], Table::fmt(static_cast<unsigned long long>(r.served)),
             Table::fmt(static_cast<unsigned long long>(r.shed)),
             Table::fmt(static_cast<unsigned long long>(
                 r.safety_violations + r.readback_mismatches)),
             Table::fmt(r.throughput_per_delta(kStep), 2),
             Table::fmt(r.latency.percentile(99) / static_cast<double>(kStep),
                        2)});
  }
  svc.print(rec.out());
  const std::uint64_t service_violations =
      adaptive_report.safety_violations + adaptive_report.readback_mismatches +
      static_report.safety_violations + static_report.readback_mismatches;
  rec.metric("service.violations", static_cast<double>(service_violations));
  rec.metric("service.adaptive.throughput_per_delta",
             adaptive_report.throughput_per_delta(kStep));
  rec.metric("service.adaptive.latency_p99_steps",
             adaptive_report.latency.percentile(99) /
                 static_cast<double>(kStep));
  rec.expect(adaptive_report.all_elected && adaptive_report.complete() &&
                 adaptive_report.shed == 0,
             "every session is served with the adaptive batch deadline");
  rec.expect(adaptive_report.linearizable && service_violations == 0,
             "shard histories linearize with and without the controller");
  rec.expect(adaptive_report.throughput_per_delta(kStep) >=
                 0.8 * static_report.throughput_per_delta(kStep),
             "the adaptive deadline does not cost steady-state throughput");

  // The one number the baseline pins exactly: zero safety violations in
  // every cell of the experiment.
  rec.metric("violations.total",
             static_cast<double>(drift_violations + abd_violations +
                                 service_violations));
  rec.expect(drift_violations + abd_violations + service_violations == 0,
             "no safety violation anywhere: adaptation is performance-only");
}
