// E4 — Theorem 2.4 (wait-freedom): every nonfaulty process decides no
// matter how many other processes crash, and its decision time does not
// degrade with the number of crashes.
//
// Workload: n=8 split inputs under jittered legal timing; k processes
// crash after a few steps, k = 0..7.  Series: survivor decision rate,
// survivor decision time, rounds.  Expected shape: 100% decision rate in
// every row; time bounded by a small constant multiple of Delta.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;

namespace {
constexpr sim::Duration kDelta = 100;
constexpr std::size_t kProcesses = 8;
constexpr std::uint64_t kSeeds = 25;
}  // namespace

TFR_BENCH_EXPERIMENT(E4, "Theorem 2.4", bench::Tier::kSmoke,
                     "wait-freedom: survivors decide despite crashes "
                     "(Theorem 2.4)") {
  Table table;
  table.header({"crashes k", "survivors deciding (%)",
                "decide time / Delta (mean, min..max)", "max round"});

  bool all_survivors_decide = true;
  double worst_time = 0;

  for (std::size_t k = 0; k < kProcesses; ++k) {
    std::size_t decided = 0;
    std::size_t survivors = 0;
    Samples times;
    std::size_t max_round = 0;

    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      sim::Simulation s(sim::make_uniform_timing(1, kDelta), {.seed = seed});
      core::SimConsensus consensus(s.space(), kDelta);
      for (std::size_t i = 0; i < kProcesses; ++i) {
        const int input = static_cast<int>(i % 2);
        consensus.monitor().set_input(static_cast<sim::Pid>(i), input);
        s.spawn([&consensus, input](sim::Env env) {
          return consensus.participant(env, input);
        });
      }
      for (std::size_t c = 0; c < k; ++c)
        s.crash_after_accesses(static_cast<sim::Pid>(c),
                               2 + c + static_cast<std::size_t>(seed % 4));
      s.run(10'000'000);
      for (std::size_t i = k; i < kProcesses; ++i) {
        ++survivors;
        decided += consensus.monitor().has_decided(static_cast<sim::Pid>(i));
      }
      if (consensus.monitor().last_decision_time() >= 0)
        times.add(static_cast<double>(consensus.monitor().last_decision_time()));
      max_round = std::max(max_round, consensus.max_round());
    }

    const double rate = 100.0 * static_cast<double>(decided) /
                        static_cast<double>(survivors);
    all_survivors_decide &= (decided == survivors);
    worst_time = std::max(worst_time, times.max() / kDelta);
    table.row({Table::fmt(static_cast<long long>(k)), Table::fmt(rate, 1),
               bench::summarize(times, kDelta),
               Table::fmt(static_cast<long long>(max_round))});
  }
  table.print(rec.out());

  rec.metric("decide_time.worst", worst_time, "delta");
  rec.expect(all_survivors_decide,
             "every survivor decides for every crash count");
  rec.expect(worst_time <= 40.0,
             "survivor decision time stays a small multiple of Delta "
             "(measured max " + Table::fmt(worst_time) + " Delta)");
}
