// E9 — Theorem 3.1 (space lower bound): any n-process mutual-exclusion
// algorithm that is resilient to timing failures must use at least n
// shared registers.
//
// Audit: count the registers each implementation actually allocates as n
// grows, against the lower-bound line.  Expected shape: Algorithm 3
// instantiations sit at Θ(n) (>= n, within a small constant factor);
// Fischer alone sits below the line — consistent with the theorem, since
// Fischer alone is *not* resilient to timing failures (see E6).

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "tfr/mutex/mutex_sim.hpp"
#include "tfr/sim/register.hpp"

using namespace tfr;

namespace {
constexpr sim::Duration kDelta = 100;

std::uint64_t registers_for(const char* name, int n) {
  sim::RegisterSpace space;
  std::unique_ptr<mutex::SimMutex> algorithm;
  const std::string which(name);
  if (which == "fischer") {
    algorithm = std::make_unique<mutex::FischerMutex>(space, kDelta);
  } else if (which == "tfr(sf)") {
    algorithm = mutex::make_tfr_mutex_starvation_free(space, n, kDelta);
  } else if (which == "tfr(df)") {
    algorithm = mutex::make_tfr_mutex_deadlock_free_only(space, n, kDelta);
  } else if (which == "bakery") {
    algorithm = std::make_unique<mutex::BakeryMutex>(space, n);
  } else {
    algorithm = std::make_unique<mutex::BlackWhiteBakeryMutex>(space, n);
  }
  return space.allocated();
}

}  // namespace

TFR_BENCH_EXPERIMENT(E9, "Theorem 3.1", bench::Tier::kSmoke,
                     "register counts vs the Theorem 3.1 lower bound "
                     "(n registers for n processes)") {
  Table table;
  table.header({"n", "lower bound", "tfr(sf)", "tfr(df)", "bakery",
                "bw-bakery", "fischer (not resilient)"});

  bool resilient_meet_bound = true;
  bool resilient_linear = true;
  std::uint64_t sf_n64 = 0;
  for (const int n : {2, 4, 8, 16, 32, 64}) {
    const auto sf = registers_for("tfr(sf)", n);
    const auto df = registers_for("tfr(df)", n);
    const auto bak = registers_for("bakery", n);
    const auto bw = registers_for("bw-bakery", n);
    const auto fis = registers_for("fischer", n);
    resilient_meet_bound &= (sf >= static_cast<std::uint64_t>(n)) &&
                            (df >= static_cast<std::uint64_t>(n));
    resilient_linear &= (sf <= static_cast<std::uint64_t>(3 * n + 8));
    if (n == 64) sf_n64 = sf;
    table.row({Table::fmt(static_cast<long long>(n)),
               Table::fmt(static_cast<long long>(n)),
               Table::fmt(static_cast<unsigned long long>(sf)),
               Table::fmt(static_cast<unsigned long long>(df)),
               Table::fmt(static_cast<unsigned long long>(bak)),
               Table::fmt(static_cast<unsigned long long>(bw)),
               Table::fmt(static_cast<unsigned long long>(fis))});
  }
  table.print(rec.out());

  rec.metric("tfr_sf.registers.n64", static_cast<double>(sf_n64));
  rec.metric("fischer.registers.n64",
             static_cast<double>(registers_for("fischer", 64)));
  rec.expect(resilient_meet_bound,
             "time-resilient algorithms allocate >= n registers "
             "(Theorem 3.1 lower bound respected)");
  rec.expect(resilient_linear,
             "Algorithm 3 (A = starvation-free) stays within 3n + 8 "
             "registers: the bound is asymptotically tight");
  rec.expect(registers_for("fischer", 64) == 1,
             "Fischer alone uses one register — and is exactly the "
             "algorithm that is NOT resilient (cf. E6)");
}
