// E6 — §3.1 vs §3.3: Fischer's algorithm (Algorithm 2) loses mutual
// exclusion under timing failures; the time-resilient mutex (Algorithm 3)
// never does, under the very same failure injection.
//
// Workload: 4 processes, long critical sections, random per-access timing
// failures with probability p (stretch up to 12 Delta), p swept from 0 to
// 0.2.  Series: mutual-exclusion violations per 1000 CS entries.
// Expected shape: Fischer's violation rate is 0 at p=0 and grows with p;
// Algorithm 3's row is identically 0.

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "tfr/mutex/mutex_sim.hpp"
#include "tfr/mutex/workload_sim.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;
using mutex::WorkloadConfig;

namespace {
constexpr sim::Duration kDelta = 100;
constexpr std::uint64_t kSeeds = 20;

struct Cell {
  std::uint64_t violations = 0;
  std::uint64_t entries = 0;
};

Cell measure(bool fischer, double p) {
  Cell cell;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    std::unique_ptr<sim::TimingModel> timing =
        sim::make_uniform_timing(1, kDelta);
    if (p > 0) {
      auto injector = std::make_unique<sim::FailureInjector>(
          std::move(timing), kDelta);
      injector->set_random_failures(p, 12 * kDelta);
      timing = std::move(injector);
    }
    const auto result = mutex::run_mutex_workload(
        [fischer](sim::RegisterSpace& sp)
            -> std::unique_ptr<mutex::SimMutex> {
          if (fischer) return std::make_unique<mutex::FischerMutex>(sp, kDelta);
          return mutex::make_tfr_mutex_starvation_free(sp, 4, kDelta);
        },
        WorkloadConfig{.processes = 4,
                       .sessions = 25,
                       .cs_time = 10 * kDelta,
                       .ncs_time = 50,
                       .randomize_ncs = true,
                       .tolerate_violations = true},
        std::move(timing), seed, 200'000'000);
    cell.violations += result.violations;
    cell.entries += result.cs_entries;
  }
  return cell;
}

double per_mille(const Cell& cell) {
  return cell.entries == 0
             ? 0.0
             : 1000.0 * static_cast<double>(cell.violations) /
                   static_cast<double>(cell.entries);
}

}  // namespace

TFR_BENCH_EXPERIMENT(E6, "section 3.1/3.3", bench::Tier::kSmoke,
                     "mutual-exclusion violations under timing failures: "
                     "Fischer (Algorithm 2) vs time-resilient "
                     "(Algorithm 3)") {
  Table table;
  table.header({"failure prob p", "fischer violations / 1000 CS",
                "tfr(A=sf) violations / 1000 CS"});

  std::uint64_t fischer_total = 0;
  std::uint64_t tfr_total = 0;
  double fischer_at_zero = -1;
  double fischer_at_max = -1;

  for (const double p : {0.0, 0.02, 0.05, 0.1, 0.2}) {
    const Cell fischer = measure(true, p);
    const Cell resilient = measure(false, p);
    fischer_total += fischer.violations;
    tfr_total += resilient.violations;
    if (p == 0.0) fischer_at_zero = per_mille(fischer);
    fischer_at_max = per_mille(fischer);
    table.row({Table::fmt(p, 2), Table::fmt(per_mille(fischer), 2),
               Table::fmt(per_mille(resilient), 2)});
  }
  table.print(rec.out());

  rec.metric("fischer.violations.total", static_cast<double>(fischer_total));
  rec.metric("fischer.per_mille_at_max_p", fischer_at_max);
  rec.metric("tfr.violations.total", static_cast<double>(tfr_total));
  rec.expect(fischer_at_zero == 0.0,
             "Fischer is safe when timing holds (p=0 row is 0)");
  rec.expect(fischer_total > 0,
             "Fischer violates mutual exclusion under timing failures");
  rec.expect(fischer_at_max > 0,
             "Fischer's violation rate is positive at the highest p");
  rec.expect(tfr_total == 0,
             "Algorithm 3 never violates mutual exclusion "
             "(identically zero across the sweep)");
}
