// E17 — §4: scheduling failures.  The paper generalizes timing failures
// to any pair of models and explicitly suggests making assumptions about
// the scheduler: "a scheduling failure refers to a situation where the
// constraints of the scheduler are not met.  Resiliency in the presence
// of scheduling failures is defined in the obvious way."
//
// Model: quantum-based scheduling (cf. [9, 10]) — time is sliced into
// quanta, slot q belongs to process q mod n, so every process is promised
// a step within Δ_q = n·quantum.  A scheduling failure confiscates a
// victim's quanta for a while (priority inversion).  Algorithm 1 runs
// with delay(Δ_q).
//
// Expected shape: without failures, decisions land within 15·Δ_q at every
// quantum size; a confiscation burst delays only (never corrupts) the
// outcome, and the post-burst decision arrives within the usual bound —
// resilience to scheduling failures, measured.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/sim/timing.hpp"

using namespace tfr;

namespace {

struct Run {
  bool all_decided = false;
  sim::Time last_decision = -1;
  std::uint64_t postponements = 0;
};

Run run_quantum(int n, sim::Duration quantum, sim::Time confiscate_until,
                std::uint64_t seed, sim::Time limit) {
  auto timing = std::make_unique<sim::QuantumTiming>(n, quantum, 1);
  const sim::Duration delta_q = timing->delta_equivalent();
  if (confiscate_until > 0) {
    // The scheduler starves process 0 outright for a while.
    timing->confiscate(0, 0, confiscate_until);
  }
  auto* timing_ptr = timing.get();

  sim::Simulation s(std::move(timing), {.seed = seed});
  core::SimConsensus consensus(s.space(), delta_q);
  for (int i = 0; i < n; ++i) {
    consensus.monitor().set_input(i, i % 2);
    s.spawn([&consensus, input = i % 2](sim::Env env) {
      return consensus.participant(env, input);
    });
  }
  s.run(limit);
  return Run{consensus.monitor().all_decided(static_cast<std::size_t>(n)),
             consensus.monitor().last_decision_time(),
             timing_ptr->postponements()};
}

}  // namespace

TFR_BENCH_EXPERIMENT(E17, "section 4 (scheduling failures)",
                     bench::Tier::kSmoke,
                     "quantum scheduling and scheduling failures (§4): "
                     "Algorithm 1 with delay(n*quantum)") {
  Table clean("no scheduling failures (n = 4, delta_q = 4*quantum)");
  clean.header({"quantum", "decide time / delta_q", "within 15?"});
  bool all_within = true;
  for (const sim::Duration quantum : {4, 16, 64, 256}) {
    const auto r = run_quantum(4, quantum, 0, 1, 1'000'000'000);
    const double normalized =
        static_cast<double>(r.last_decision) / (4.0 * static_cast<double>(quantum));
    all_within &= r.all_decided && normalized <= 15.0;
    clean.row({Table::fmt(static_cast<long long>(quantum)),
               Table::fmt(normalized, 2),
               normalized <= 15.0 ? "yes" : "NO"});
  }
  clean.print(rec.out());
  rec.expect(all_within,
             "decisions within 15 * delta_q at every quantum size "
             "(the timing-failure bound carries over verbatim)");

  Table burst("scheduling-failure burst: process 0's quanta confiscated "
              "until T (n = 4, quantum = 16, delta_q = 64)");
  burst.header({"confiscated until / delta_q", "decided", "postponed quanta",
                "decide time / delta_q"});
  bool all_safe_and_decided = true;
  double worst_overrun = 0;
  for (const sim::Time factor : {2, 8, 32}) {
    const sim::Time until = factor * 64;
    const auto r = run_quantum(4, 16, until, 1, 1'000'000'000);
    all_safe_and_decided &= r.all_decided;
    const double normalized = static_cast<double>(r.last_decision) / 64.0;
    worst_overrun = std::max(
        worst_overrun, normalized - static_cast<double>(factor));
    burst.row({Table::fmt(static_cast<long long>(factor)),
               r.all_decided ? "yes" : "NO",
               Table::fmt(static_cast<unsigned long long>(r.postponements)),
               Table::fmt(normalized, 2)});
  }
  burst.print(rec.out());
  rec.metric("postburst.overrun.worst", worst_overrun, "delta_q");
  rec.expect(all_safe_and_decided,
             "confiscation bursts never corrupt the outcome and "
             "decisions arrive once the scheduler behaves");
  rec.expect(worst_overrun <= 16.0,
             "post-burst convergence stays within the usual bound "
             "(decide time tracks the burst length plus <= 16 delta_q)");
}
