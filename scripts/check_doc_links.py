#!/usr/bin/env python3
"""Validate intra-repo references in the documentation.

Two classes of reference are checked:

  * markdown links `[text](target)` whose target is a relative path —
    the file (and, for `path#anchor`, a matching heading) must exist.
    External links (http/https/mailto) are skipped: CI must not depend
    on the network;

  * code references `path/to/file.ext:123` (a repo source path followed
    by a line number) — the file must exist and have at least that many
    lines, so docs cannot point into deleted or shrunken code.

Usage:
    python3 scripts/check_doc_links.py [--root REPO] [DOC.md ...]

With no DOC arguments, checks the default documentation set (README,
DESIGN, EXPERIMENTS, ROADMAP, CHANGES, PAPER(S) and everything under
docs/).  Exits 1 listing every broken reference, 0 when clean — the lint
CI job runs it on every push.
"""

import argparse
import pathlib
import re
import sys

# [text](target) — excludes images by allowing them (same syntax) and
# skipping in-page anchors and external schemes below.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# path/file.ext:123 — restricted to known source/doc extensions so prose
# like "ratio 3:1" or timestamps never match.
CODE_REF = re.compile(
    r"(?<![\w/])((?:[A-Za-z0-9_.-]+/)+[A-Za-z0-9_.-]+"
    r"\.(?:hpp|cpp|h|c|py|md|txt|json|yml|cmake)):(\d+)")
EXTERNAL = ("http://", "https://", "mailto:")

DEFAULT_DOCS = [
    "README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
    "CHANGES.md", "PAPER.md", "PAPERS.md",
]


def heading_anchors(path):
    """GitHub-style anchors for every markdown heading in `path`."""
    anchors = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        m = re.match(r"#{1,6}\s+(.*)", line)
        if not m:
            continue
        text = m.group(1).strip()
        text = re.sub(r"`([^`]*)`", r"\1", text)        # drop code ticks
        text = re.sub(r"[^\w\s-]", "", text).strip().lower()
        anchors.add(re.sub(r"[\s]+", "-", text))
    return anchors


def check_doc(doc, root, errors):
    text = doc.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), 1):
        for m in MD_LINK.finditer(line):
            target = m.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            path_part, _, anchor = target.partition("#")
            target_path = (doc.parent / path_part).resolve()
            if not target_path.exists():
                errors.append(f"{doc.relative_to(root)}:{lineno}: "
                              f"broken link target '{target}'")
                continue
            if anchor and target_path.suffix == ".md":
                if anchor.lower() not in heading_anchors(target_path):
                    errors.append(f"{doc.relative_to(root)}:{lineno}: "
                                  f"missing anchor '#{anchor}' in "
                                  f"'{path_part}'")
        for m in CODE_REF.finditer(line):
            ref_path, ref_line = m.group(1), int(m.group(2))
            target_path = root / ref_path
            if not target_path.exists():
                errors.append(f"{doc.relative_to(root)}:{lineno}: "
                              f"code reference to missing file "
                              f"'{ref_path}'")
                continue
            lines = target_path.read_text(encoding="utf-8",
                                          errors="replace").count("\n") + 1
            if ref_line > lines:
                errors.append(f"{doc.relative_to(root)}:{lineno}: "
                              f"code reference '{ref_path}:{ref_line}' "
                              f"past end of file ({lines} lines)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("docs", nargs="*",
                        help="documents to check (default: standard set)")
    args = parser.parse_args()

    root = pathlib.Path(args.root).resolve()
    if args.docs:
        docs = [pathlib.Path(d).resolve() for d in args.docs]
    else:
        docs = [root / d for d in DEFAULT_DOCS if (root / d).exists()]
        docs += sorted((root / "docs").glob("*.md"))

    errors = []
    for doc in docs:
        check_doc(doc, root, errors)

    if errors:
        print(f"{len(errors)} broken reference(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"checked {len(docs)} document(s): all references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
