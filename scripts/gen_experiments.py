#!/usr/bin/env python3
"""Regenerate the per-experiment result blocks of EXPERIMENTS.md.

Reads a BENCH_*.json report (normally the committed bench/baseline.json)
and rewrites every marker-delimited block

    <!-- BEGIN GENERATED: E1 -->
    ...
    <!-- END GENERATED: E1 -->

with that experiment's claim, tier, headline metrics and check verdicts.
Text outside the markers is never touched, so the hand-written rationale
around each experiment lives alongside machine-maintained numbers.

Usage:
    python3 scripts/gen_experiments.py                 # rewrite in place
    python3 scripts/gen_experiments.py --check         # exit 1 on drift
    python3 scripts/gen_experiments.py --json R.json --doc DOC.md

The emitter is deterministic: the same JSON always produces the same
bytes, which is what the CI drift check (and the round-trip test in
tests/gen_experiments_test.py) relies on.
"""

import argparse
import json
import re
import sys

BEGIN = "<!-- BEGIN GENERATED: {id} -->"
END = "<!-- END GENERATED: {id} -->"


def fmt_value(value):
    """Match the C++ emitter: integral values print as integers, the rest
    with up to 10 significant digits."""
    if isinstance(value, (int,)) and not isinstance(value, bool):
        return str(value)
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return "%.10g" % value


def render_block(experiment):
    lines = []
    claim = experiment.get("claim", "")
    tier = experiment.get("tier", "")
    wall = experiment.get("wall_ms")
    header = f"**Claim:** {claim} · **Tier:** {tier}"
    if wall is not None:
        header += f" · **Wall:** {fmt_value(round(wall))} ms"
    lines.append(header)
    lines.append("")

    metrics = experiment.get("metrics", [])
    if metrics:
        lines.append("| metric | value | unit |")
        lines.append("|---|---:|---|")
        for metric in metrics:
            unit = metric.get("unit", "")
            lines.append(
                f"| `{metric['name']}` | {fmt_value(metric['value'])} "
                f"| {unit} |"
            )
        lines.append("")

    expects = experiment.get("expects", [])
    passed = sum(1 for e in expects if e.get("pass"))
    if expects:
        verdict = "pass" if passed == len(expects) else "**FAIL**"
        lines.append(f"Checks: {passed}/{len(expects)} {verdict}.")
    return "\n".join(lines)


def regenerate(doc_text, report):
    """Returns (new_text, replaced_ids, missing_ids)."""
    replaced, missing = [], []
    text = doc_text
    for experiment in report.get("experiments", []):
        exp_id = experiment["id"]
        begin = BEGIN.format(id=exp_id)
        end = END.format(id=exp_id)
        pattern = re.compile(
            re.escape(begin) + r".*?" + re.escape(end), re.DOTALL
        )
        if not pattern.search(text):
            missing.append(exp_id)
            continue
        block = begin + "\n" + render_block(experiment) + "\n" + end
        text = pattern.sub(lambda _m: block, text, count=1)
        replaced.append(exp_id)
    return text, replaced, missing


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default="bench/baseline.json",
                        help="BENCH report to render (default: %(default)s)")
    parser.add_argument("--doc", default="EXPERIMENTS.md",
                        help="document to rewrite (default: %(default)s)")
    parser.add_argument("--check", action="store_true",
                        help="verify the doc is up to date; write nothing")
    args = parser.parse_args()

    with open(args.json, encoding="utf-8") as f:
        report = json.load(f)
    with open(args.doc, encoding="utf-8") as f:
        doc_text = f.read()

    new_text, replaced, missing = regenerate(doc_text, report)

    if missing:
        for exp_id in missing:
            print(f"error: {args.doc} has no marker block for {exp_id} "
                  f"(add '{BEGIN.format(id=exp_id)}' ... "
                  f"'{END.format(id=exp_id)}')", file=sys.stderr)
        return 1

    if args.check:
        if new_text != doc_text:
            print(f"error: {args.doc} is stale — rerun "
                  f"'python3 scripts/gen_experiments.py' and commit",
                  file=sys.stderr)
            return 1
        print(f"{args.doc}: up to date ({len(replaced)} generated blocks)")
        return 0

    if new_text != doc_text:
        with open(args.doc, "w", encoding="utf-8") as f:
            f.write(new_text)
        print(f"{args.doc}: rewrote {len(replaced)} generated blocks")
    else:
        print(f"{args.doc}: already up to date ({len(replaced)} blocks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
