#!/usr/bin/env python3
"""Checks the shared-memory access discipline of algorithm code.

Two scopes, one idea: every shared access in algorithm code must go
through the layer that makes it visible to the model checker.

Simulator scope (src/core, src/mutex, src/derived, minus *_rt.* files):
algorithm implementations must touch shared registers only through the
timed awaiters (`co_await env.read(...)` / `co_await env.write(...)`).
The untimed escape hatches of sim::Register — peek()/poke() and
load_linearized()/store_linearized() — bypass the timing model, the
monitors and the mcheck explorer, so any use in algorithm code is a
layering bug.  Deliberate uses (monitor peeks after the run, memory-
failure injection between events) carry an `untimed-ok:` annotation.

Real-thread scope (src/rt, src/mutex/mutex_rt.*, src/mutex/
lock_adapters.hpp, src/registers/atomic_register.hpp, plus the adaptive
controllers in src/adapt/ that rt threads may share): rt algorithm code
is templated over the Atomics policy (src/rt/atomics_policy.hpp) so the
same source runs on std::atomic in production and through the mcheck
interposition seam (src/rt/shim/) under verification.  Two rules:

  * raw `std::atomic` / `std::atomic_flag` cells bypass the seam — the
    checker cannot see or reorder those accesses.  Harness-only
    instrumentation carries a `raw-atomic-ok:` annotation.
  * non-seq_cst memory orders are invisible to the shim, which models
    every access as seq_cst (one linearization order); a relaxed/acquire/
    release order is therefore *unverified* strength reduction and needs
    a `mo-ok:` annotation arguing its correctness on the same line or the
    line above.

The policy definition itself (atomics_policy.hpp) and the seam
implementation (src/rt/shim/) are the two sides of the boundary and are
exempt.  consensus_rt.cpp / derived_rt.cpp predate the seam and stay
outside it for now (TSan covers them); widening the rt scope to them is
tracked in ROADMAP.md.

Exit status: 0 when clean, 1 with findings (one per line, file:line).
"""

import re
import sys
from pathlib import Path

SIM_DIRS = ("src/core", "src/mutex", "src/derived")
SIM_PATTERN = re.compile(r"\.peek\(|\.poke\(|load_linearized|store_linearized")
SIM_ANNOTATION = "untimed-ok"

RT_FILES = (
    "src/rt",
    "src/mutex/mutex_rt.hpp",
    "src/mutex/mutex_rt.cpp",
    "src/mutex/lock_adapters.hpp",
    "src/registers/atomic_register.hpp",
    # Adaptive controllers may be shared by rt threads (AtomicAimd), so
    # the whole directory — including the per-channel estimator and the
    # timeliness graph — carries the same annotation discipline.
    "src/adapt",
    # The ABD client consumes a shared DeltaController; keep its use of
    # the controller surface under the same scrutiny.
    "src/msg/abd.hpp",
    "src/msg/abd.cpp",
)
RT_EXEMPT = ("src/rt/shim", "src/rt/atomics_policy.hpp")
RAW_ATOMIC_PATTERN = re.compile(r"std::atomic\s*<|std::atomic_flag")
RAW_ATOMIC_ANNOTATION = "raw-atomic-ok"
WEAK_ORDER_PATTERN = re.compile(
    r"memory_order_(?:relaxed|acquire|release|acq_rel|consume)"
)
WEAK_ORDER_ANNOTATION = "mo-ok"


def strip_comments(line: str) -> str:
    """Drops // comments so prose mentioning std::atomic is not a finding."""
    return line.split("//", 1)[0]


def iter_sources(root: Path, spec):
    for entry in spec:
        path = root / entry
        candidates = sorted(path.rglob("*")) if path.is_dir() else [path]
        for candidate in candidates:
            if candidate.suffix in (".hpp", ".cpp") and candidate.exists():
                yield candidate


def scan_file(path: Path, rules):
    """Yields (lineno, line, message) per rule violation.

    An annotation on the offending line or on the line directly above
    covers it (multi-line calls put several memory_order arguments under
    one annotated first line).
    """
    lines = path.read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines, start=1):
        code = strip_comments(line)
        annotated_here = line
        annotated_above = lines[lineno - 2] if lineno >= 2 else ""
        for pattern, annotation, message in rules:
            if not pattern.search(code):
                continue
            if annotation in annotated_here or annotation in annotated_above:
                continue
            yield lineno, line.strip(), message


def findings(root: Path):
    sim_rules = [
        (SIM_PATTERN, SIM_ANNOTATION, "untimed shared access in algorithm code")
    ]
    for path in iter_sources(root, SIM_DIRS):
        if "_rt." in path.name or path.name == "lock_adapters.hpp":
            continue
        for lineno, line, message in scan_file(path, sim_rules):
            yield path.relative_to(root), lineno, line, message

    rt_rules = [
        (
            RAW_ATOMIC_PATTERN,
            RAW_ATOMIC_ANNOTATION,
            "raw std::atomic bypasses the Atomics policy seam",
        ),
        (
            WEAK_ORDER_PATTERN,
            WEAK_ORDER_ANNOTATION,
            "non-seq_cst order is unverified by the shim",
        ),
    ]
    exempt = tuple(str(root / e) for e in RT_EXEMPT)
    for path in iter_sources(root, RT_FILES):
        if str(path).startswith(exempt):
            continue
        for lineno, line, message in scan_file(path, rt_rules):
            yield path.relative_to(root), lineno, line, message


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    bad = list(findings(root))
    for path, lineno, line, message in bad:
        print(f"{path}:{lineno}: {message}: {line}")
    if bad:
        print(
            f"\n{len(bad)} shared-access finding(s); route the access through\n"
            f"the timed awaiters / the Atomics policy, or annotate deliberate\n"
            f"uses with '// {SIM_ANNOTATION}: <reason>',"
            f" '// {RAW_ATOMIC_ANNOTATION}: <reason>' or"
            f" '// {WEAK_ORDER_ANNOTATION}: <reason>'.",
            file=sys.stderr,
        )
        return 1
    print(
        "lint_shared_access: clean "
        f"({', '.join(SIM_DIRS)}; rt seam: {', '.join(RT_FILES)})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
