#!/usr/bin/env python3
"""Checks the timed-access discipline of simulator algorithm code.

Algorithm implementations under src/core, src/mutex and src/derived must
touch shared registers only through the timed awaiters (`co_await
env.read(...)` / `co_await env.write(...)`): every shared access then
costs virtual time and is visible to the timing model, the monitors and
the mcheck explorer.  The untimed escape hatches of sim::Register —
peek()/poke() (debug/fault-injection views) and load_linearized()/
store_linearized() (awaiter internals) — bypass all of that, so any use
in algorithm code is a layering bug: an access the model checker cannot
see or reorder.

Deliberate untimed uses (monitor peeks after the run, memory-failure
injection between events) carry an `untimed-ok:` annotation on the same
line explaining why.

Real-thread code (*_rt.*) builds on the registers/ layer, not
sim::Register, and is outside this discipline (TSan covers it instead).

Exit status: 0 when clean, 1 with findings (one per line, file:line).
"""

import re
import sys
from pathlib import Path

SCOPED_DIRS = ("src/core", "src/mutex", "src/derived")
PATTERN = re.compile(r"\.peek\(|\.poke\(|load_linearized|store_linearized")
ANNOTATION = "untimed-ok"


def findings(root: Path):
    for scoped in SCOPED_DIRS:
        for path in sorted((root / scoped).rglob("*")):
            if path.suffix not in (".hpp", ".cpp"):
                continue
            if "_rt." in path.name:
                continue
            for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if PATTERN.search(line) and ANNOTATION not in line:
                    yield path.relative_to(root), lineno, line.strip()


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    bad = list(findings(root))
    for path, lineno, line in bad:
        print(f"{path}:{lineno}: untimed shared access in algorithm code: {line}")
    if bad:
        print(
            f"\n{len(bad)} untimed shared access(es); use the timed awaiters, or\n"
            f"annotate deliberate ones with '// {ANNOTATION}: <reason>'.",
            file=sys.stderr,
        )
        return 1
    print(f"lint_shared_access: clean ({', '.join(SCOPED_DIRS)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
